//! Named policy construction for harnesses and configuration files.

use super::{DtbFm, DtbMem, FeedMed, Fixed, Full, TbPolicy};
use crate::cost::CostModel;
use crate::time::Bytes;
use serde::{de, Deserialize, Serialize, Value};

/// The six collector configurations evaluated in the paper, as data.
///
/// Lets benchmark harnesses, tests, and CLI tools iterate over "all the
/// collectors in Table 1" without hard-coding constructor calls.
///
/// # Example
///
/// ```
/// use dtb_core::policy::{PolicyKind, PolicyConfig};
///
/// let cfg = PolicyConfig::paper();
/// let mut names: Vec<&str> = Vec::new();
/// for kind in PolicyKind::ALL {
///     names.push(kind.label());
///     let _policy = kind.build(&cfg);
/// }
/// assert_eq!(names, ["FULL", "FIXED1", "FIXED4", "DTBMEM", "FEEDMED", "DTBFM"]);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Non-generational full collection.
    Full,
    /// Classic generational, tenure after 1 survived scavenge.
    Fixed1,
    /// Classic generational, tenure after 4 survived scavenges.
    Fixed4,
    /// Memory-constrained dynamic threatening boundary.
    DtbMem,
    /// Ungar–Jackson Feedback Mediation.
    FeedMed,
    /// Pause-constrained dynamic threatening boundary.
    DtbFm,
}

impl PolicyKind {
    /// All six collectors, in the row order of the paper's tables.
    pub const ALL: [PolicyKind; 6] = [
        PolicyKind::Full,
        PolicyKind::Fixed1,
        PolicyKind::Fixed4,
        PolicyKind::DtbMem,
        PolicyKind::FeedMed,
        PolicyKind::DtbFm,
    ];

    /// The label used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Full => "FULL",
            PolicyKind::Fixed1 => "FIXED1",
            PolicyKind::Fixed4 => "FIXED4",
            PolicyKind::DtbMem => "DTBMEM",
            PolicyKind::FeedMed => "FEEDMED",
            PolicyKind::DtbFm => "DTBFM",
        }
    }

    /// Instantiates the policy under a configuration.
    pub fn build(self, cfg: &PolicyConfig) -> Box<dyn TbPolicy> {
        match self {
            PolicyKind::Full => Box::new(Full::new()),
            PolicyKind::Fixed1 => Box::new(Fixed::new(1)),
            PolicyKind::Fixed4 => Box::new(Fixed::new(4)),
            PolicyKind::DtbMem => Box::new(DtbMem::new(cfg.mem_max)),
            PolicyKind::FeedMed => Box::new(FeedMed::new(cfg.trace_max)),
            PolicyKind::DtbFm => Box::new(DtbFm::new(cfg.trace_max)),
        }
    }

    /// Parses a table label (case-insensitive): `"DTBFM"`, `"fixed1"`, ….
    pub fn parse(label: &str) -> Option<PolicyKind> {
        Some(match label.to_ascii_uppercase().as_str() {
            "FULL" => PolicyKind::Full,
            "FIXED1" => PolicyKind::Fixed1,
            "FIXED4" => PolicyKind::Fixed4,
            "DTBMEM" => PolicyKind::DtbMem,
            "FEEDMED" => PolicyKind::FeedMed,
            "DTBFM" => PolicyKind::DtbFm,
            _ => return None,
        })
    }
}

impl core::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // `pad`, not `write_str`: table printers rely on `{:>8}` etc.
        f.pad(self.label())
    }
}

// Serialized as the table label (`"DTBFM"`), not the variant name, so
// reports read exactly like the paper's rows.
impl Serialize for PolicyKind {
    fn to_value(&self) -> Value {
        Value::Str(self.label().to_owned())
    }
}

impl Deserialize for PolicyKind {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Str(s) => PolicyKind::parse(s)
                .ok_or_else(|| de::Error::msg(format!("unknown policy label `{s}`"))),
            other => Err(de::Error::msg(format!(
                "expected policy label string, got {}",
                other.kind()
            ))),
        }
    }
}

/// One row of the paper's evaluation tables: a collector, one of the two
/// reference baselines, or a user-supplied policy.
///
/// Table 2 prints eight rows — the six collectors of [`PolicyKind::ALL`]
/// plus `No GC` (nothing ever reclaimed) and `LIVE` (the exact reachable
/// floor). `Row` makes that union typed, so report consumers match on it
/// instead of comparing label strings.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Row {
    /// One of the six evaluated collectors.
    Policy(PolicyKind),
    /// The `No GC` baseline: memory if nothing were ever reclaimed.
    NoGc,
    /// The `LIVE` baseline: exact reachable storage over time.
    Live,
    /// A policy outside the paper's six, labeled by its `TbPolicy::name`.
    Custom(String),
}

impl Row {
    /// The eight rows of Table 2, in print order.
    pub fn table_rows() -> [Row; 8] {
        [
            Row::Policy(PolicyKind::Full),
            Row::Policy(PolicyKind::Fixed1),
            Row::Policy(PolicyKind::Fixed4),
            Row::Policy(PolicyKind::DtbMem),
            Row::Policy(PolicyKind::FeedMed),
            Row::Policy(PolicyKind::DtbFm),
            Row::NoGc,
            Row::Live,
        ]
    }

    /// The printed row label (`"DTBFM"`, `"No GC"`, `"LIVE"`, …).
    pub fn as_str(&self) -> &str {
        match self {
            Row::Policy(kind) => kind.label(),
            Row::NoGc => "No GC",
            Row::Live => "LIVE",
            Row::Custom(name) => name,
        }
    }

    /// The collector kind, when this row is one of the paper's six.
    pub fn policy(&self) -> Option<PolicyKind> {
        match self {
            Row::Policy(kind) => Some(*kind),
            _ => None,
        }
    }

    /// Rebuilds a row from its label. Total: labels that are neither a
    /// collector nor a baseline become [`Row::Custom`].
    pub fn parse(label: &str) -> Row {
        match label {
            "No GC" => Row::NoGc,
            "LIVE" => Row::Live,
            other => PolicyKind::parse(other)
                .map(Row::Policy)
                .unwrap_or_else(|| Row::Custom(other.to_owned())),
        }
    }
}

impl From<PolicyKind> for Row {
    fn from(kind: PolicyKind) -> Row {
        Row::Policy(kind)
    }
}

impl From<&str> for Row {
    fn from(label: &str) -> Row {
        Row::parse(label)
    }
}

impl From<String> for Row {
    fn from(label: String) -> Row {
        Row::parse(&label)
    }
}

impl core::fmt::Display for Row {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // `pad`, not `write_str`: table printers rely on `{:>9}` etc.
        f.pad(self.as_str())
    }
}

// String-form serde, mirroring `PolicyKind`: a row is its printed label.
impl Serialize for Row {
    fn to_value(&self) -> Value {
        Value::Str(self.as_str().to_owned())
    }
}

impl Deserialize for Row {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Str(s) => Ok(Row::parse(s)),
            other => Err(de::Error::msg(format!(
                "expected row label string, got {}",
                other.kind()
            ))),
        }
    }
}

/// Constraint values shared by the constrained policies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolicyConfig {
    /// `Trace_max` for `FEEDMED` and `DTBFM` (bytes traced per scavenge).
    pub trace_max: Bytes,
    /// `Mem_max` for `DTBMEM` (total bytes in use).
    pub mem_max: Bytes,
}

impl PolicyConfig {
    /// The paper's Section 5 configuration: 100 ms pauses (50 000 bytes at
    /// 500 KB/s) and a 3000-kilobyte memory constraint.
    pub fn paper() -> PolicyConfig {
        PolicyConfig {
            trace_max: CostModel::paper().trace_budget_for_pause_ms(100.0),
            mem_max: Bytes::from_kb(3000),
        }
    }

    /// A configuration with explicit budgets.
    pub fn new(trace_max: Bytes, mem_max: Bytes) -> PolicyConfig {
        PolicyConfig { trace_max, mem_max }
    }
}

impl Default for PolicyConfig {
    fn default() -> Self {
        PolicyConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_round_trip_through_labels() {
        for kind in PolicyKind::ALL {
            assert_eq!(PolicyKind::parse(kind.label()), Some(kind));
            assert_eq!(PolicyKind::parse(&kind.label().to_lowercase()), Some(kind));
        }
        assert_eq!(PolicyKind::parse("NOPE"), None);
    }

    #[test]
    fn build_produces_matching_names() {
        let cfg = PolicyConfig::paper();
        for kind in PolicyKind::ALL {
            assert_eq!(kind.build(&cfg).name(), kind.label());
        }
    }

    #[test]
    fn paper_config_values() {
        let cfg = PolicyConfig::paper();
        assert_eq!(cfg.trace_max, Bytes::new(50_000));
        assert_eq!(cfg.mem_max, Bytes::from_kb(3000));
    }

    #[test]
    fn display_matches_label() {
        assert_eq!(PolicyKind::DtbFm.to_string(), "DTBFM");
    }

    #[test]
    fn rows_print_in_table_order() {
        let rows = Row::table_rows();
        let labels: Vec<&str> = rows.iter().map(|r| r.as_str()).collect();
        assert_eq!(
            labels,
            ["FULL", "FIXED1", "FIXED4", "DTBMEM", "FEEDMED", "DTBFM", "No GC", "LIVE"]
        );
    }

    #[test]
    fn row_parse_is_total_and_round_trips() {
        for row in Row::table_rows() {
            assert_eq!(Row::parse(row.as_str()), row);
        }
        assert_eq!(Row::parse("MYPOLICY"), Row::Custom("MYPOLICY".into()));
        assert_eq!(
            Row::Policy(PolicyKind::DtbFm).policy(),
            Some(PolicyKind::DtbFm)
        );
        assert_eq!(Row::NoGc.policy(), None);
    }

    #[test]
    fn row_and_kind_serialize_as_labels() {
        use serde::{Deserialize, Serialize, Value};
        assert_eq!(
            PolicyKind::DtbMem.to_value(),
            Value::Str("DTBMEM".to_owned())
        );
        assert_eq!(Row::NoGc.to_value(), Value::Str("No GC".to_owned()));
        let back = PolicyKind::from_value(&Value::Str("dtbfm".to_owned())).unwrap();
        assert_eq!(back, PolicyKind::DtbFm);
        let row = Row::from_value(&Value::Str("LIVE".to_owned())).unwrap();
        assert_eq!(row, Row::Live);
    }
}
