//! Ungar & Jackson's Feedback Mediation, in the threatening-boundary frame.

use super::{clamp_boundary, PolicyError, ScavengeContext, TbPolicy};
use crate::constraint::Constraint;
use crate::time::{Bytes, VirtualTime};

/// `FEEDMED`: advance the boundary only when the pause budget was exceeded.
///
/// Table 1's formulation: if the previous scavenge traced more than
/// `Trace_max`,
///
/// ```text
/// TB_n ← least { t_k | 0 ≤ k < n, t_k ≥ TB_{n-1},
///                Trace_max ≥ Σ_{j=k}^{n-1} Born_j }
/// ```
///
/// where `Born_j` is the storage allocated between `t_j` and `t_{j+1}` that
/// is still live at `t_n`; otherwise `TB_n ← TB_{n-1}`. The suffix sum
/// `Σ_{j=k}^{n-1} Born_j` is exactly the surviving storage born after
/// `t_k`, which the [`SurvivalEstimator`](super::SurvivalEstimator)
/// supplies, so the search is: the *oldest* previous scavenge time, no
/// older than the current boundary, whose predicted trace fits the budget.
///
/// Two boundary cases the paper leaves implicit:
///
/// * if no candidate fits (even tracing only the storage born since
///   `t_{n-1}` would blow the budget), the boundary advances to `t_{n-1}`
///   — the most aggressive promotion available, mirroring Feedback
///   Mediation's "promote enough objects to get under the budget";
/// * before any scavenge has completed, the boundary is `0` (initial full
///   collection).
///
/// The defining weakness the paper exploits: when pauses run *under*
/// budget, `FEEDMED` leaves the boundary in place, so tenured garbage
/// stranded by earlier mediation is never reclaimed. [`DtbFm`](super::DtbFm)
/// fixes exactly this.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FeedMed {
    trace_max: Bytes,
}

impl FeedMed {
    /// Creates a Feedback Mediation policy with the given trace budget
    /// (`Trace_max`, bytes).
    pub fn new(trace_max: Bytes) -> FeedMed {
        FeedMed { trace_max }
    }

    /// The pause budget expressed in bytes traced.
    pub fn trace_max(&self) -> Bytes {
        self.trace_max
    }
}

/// The mediation step shared by `FEEDMED` and `DTBFM`.
///
/// Finds the oldest admissible boundary among previous scavenge times at or
/// after `prev_tb` whose predicted trace fits `trace_max`; falls back to
/// `last_time` (`t_{n-1}`, supplied by the caller from the record it already
/// holds) when none fits.
///
/// The search itself is the estimator's
/// [`oldest_boundary_within`](super::SurvivalEstimator::oldest_boundary_within)
/// inverse query: against the simulator's Fenwick-backed estimator one
/// call costs `O(log n)` instead of one survival probe per candidate,
/// and against any other estimator the default scan reproduces the old
/// loop exactly.
pub(super) fn mediate(
    ctx: &ScavengeContext<'_>,
    trace_max: Bytes,
    prev_tb: VirtualTime,
    last_time: VirtualTime,
) -> VirtualTime {
    ctx.survival
        .oldest_boundary_within(trace_max, ctx.history.candidates_at_or_after(prev_tb))
        .map_or(last_time, |t_k| clamp_boundary(t_k, last_time))
}

impl TbPolicy for FeedMed {
    fn name(&self) -> &str {
        "FEEDMED"
    }

    fn select_boundary(&mut self, ctx: &ScavengeContext<'_>) -> Result<VirtualTime, PolicyError> {
        let Some(last) = ctx.history.last() else {
            return Ok(VirtualTime::ZERO); // initial full collection
        };
        Ok(if last.traced > self.trace_max {
            mediate(ctx, self.trace_max, last.boundary, last.at)
        } else {
            last.boundary
        })
    }

    fn constraint(&self) -> Option<Constraint> {
        Some(Constraint::trace(self.trace_max))
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::super::NoSurvivalInfo;
    use super::*;
    use crate::history::ScavengeHistory;
    use crate::time::{Bytes, VirtualTime};

    #[test]
    fn first_scavenge_is_full() {
        let mut p = FeedMed::new(Bytes::new(50));
        let est = NoSurvivalInfo;
        let h = ScavengeHistory::new();
        assert_eq!(
            p.select_boundary(
                &ScavengeContext::at(VirtualTime::from_bytes(100))
                    .mem(Bytes::new(0))
                    .history(&h)
                    .survival(&est)
            ),
            Ok(VirtualTime::ZERO)
        );
    }

    #[test]
    fn under_budget_keeps_boundary_in_place() {
        let mut p = FeedMed::new(Bytes::new(50));
        let est = NoSurvivalInfo;
        let mut h = ScavengeHistory::new();
        h.push(rec(100, 30, 40, 40, 80)); // traced 40 <= 50
        assert_eq!(
            p.select_boundary(
                &ScavengeContext::at(VirtualTime::from_bytes(200))
                    .mem(Bytes::new(0))
                    .history(&h)
                    .survival(&est)
            ),
            Ok(VirtualTime::from_bytes(30))
        );
    }

    #[test]
    fn over_budget_advances_to_oldest_fitting_time() {
        let mut p = FeedMed::new(Bytes::new(50));
        // Predicted trace: born-after-100 = 80, born-after-200 = 45.
        let est = TableEstimator {
            entries: vec![(150, 35), (250, 45)],
        };
        let mut h = ScavengeHistory::new();
        h.push(rec(100, 0, 90, 90, 150)); // traced 90 > 50 at next decision? no: this is scavenge 0
        h.push(rec(200, 100, 90, 120, 200)); // traced 90 > 50 → mediate
        let tb = p
            .select_boundary(
                &ScavengeContext::at(VirtualTime::from_bytes(300))
                    .mem(Bytes::new(0))
                    .history(&h)
                    .survival(&est),
            )
            .unwrap();
        // Candidates ≥ TB_{n-1}=100: t=100 (predict 80 > 50), t=200 (predict 45 ≤ 50).
        assert_eq!(tb, VirtualTime::from_bytes(200));
    }

    #[test]
    fn over_budget_with_no_fitting_candidate_falls_back_to_prev_time() {
        let mut p = FeedMed::new(Bytes::new(10));
        // Even storage born after the last scavenge exceeds the budget.
        let est = TableEstimator {
            entries: vec![(250, 100)],
        };
        let mut h = ScavengeHistory::new();
        h.push(rec(100, 0, 20, 20, 40));
        h.push(rec(200, 100, 20, 30, 60));
        let tb = p
            .select_boundary(
                &ScavengeContext::at(VirtualTime::from_bytes(300))
                    .mem(Bytes::new(0))
                    .history(&h)
                    .survival(&est),
            )
            .unwrap();
        assert_eq!(tb, VirtualTime::from_bytes(200));
    }

    #[test]
    fn boundary_never_moves_backward() {
        // Feedback Mediation candidates are restricted to t_k ≥ TB_{n-1}.
        let mut p = FeedMed::new(Bytes::new(50));
        let est = TableEstimator {
            entries: vec![(50, 10)],
        };
        let mut h = ScavengeHistory::new();
        h.push(rec(100, 0, 20, 20, 40));
        h.push(rec(200, 150, 90, 90, 180)); // over budget, TB_{n-1} = 150
        let tb = p
            .select_boundary(
                &ScavengeContext::at(VirtualTime::from_bytes(300))
                    .mem(Bytes::new(0))
                    .history(&h)
                    .survival(&est),
            )
            .unwrap();
        assert!(tb >= VirtualTime::from_bytes(150));
    }

    #[test]
    fn reports_trace_constraint() {
        let p = FeedMed::new(Bytes::new(50_000));
        match p.constraint() {
            Some(Constraint::Trace(b)) => assert_eq!(b, Bytes::new(50_000)),
            other => panic!("unexpected constraint {other:?}"),
        }
    }
}
