//! The paper's pause-time-constrained dynamic boundary policy.

use super::feedmed::mediate;
use super::{clamp_boundary, PolicyError, ScavengeContext, TbPolicy};
use crate::constraint::Constraint;
use crate::time::{Bytes, VirtualTime};

/// `DTBFM`: Feedback Mediation extended with backward boundary motion.
///
/// Table 1's formulation:
///
/// ```text
/// if Trace_{n-1} > Trace_max:   use FEEDMED
/// else:                         TB_n ← t_n − (t_{n-1} − TB_{n-1}) · Trace_max / Trace_{n-1}
/// ```
///
/// When the previous pause exceeded the budget, react exactly like
/// [`FeedMed`](super::FeedMed). When it came in *under* budget, exploit the
/// slack: lengthen the distance between the boundary and the scavenge time
/// by the ratio `Trace_max / Trace_{n-1} ≥ 1`, threatening older objects
/// and reclaiming tenured garbage that `FEEDMED` would strand. The result
/// is a median pause that converges on the budget from both sides (half the
/// collections over, half under) while using less memory.
///
/// Edge cases:
///
/// * before any scavenge has completed the boundary is `0` (initial full
///   collection);
/// * `Trace_{n-1} = 0` (nothing was live in threatened space) makes the
///   ratio unbounded — we take the limit and do a full collection, the
///   cheapest moment there will ever be for one;
/// * the boundary is clamped to `[0, t_{n-1}]` so every object is traced at
///   least once, the same rule the paper states for `DTBMEM`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DtbFm {
    trace_max: Bytes,
}

impl DtbFm {
    /// Creates a pause-constrained policy with trace budget `Trace_max`.
    pub fn new(trace_max: Bytes) -> DtbFm {
        DtbFm { trace_max }
    }

    /// Creates the policy from a pause budget in milliseconds under a cost
    /// model (e.g. 100 ms at 500 KB/s ⇒ 50 000 bytes).
    pub fn from_pause_ms(pause_ms: f64, model: &crate::cost::CostModel) -> DtbFm {
        DtbFm::new(model.trace_budget_for_pause_ms(pause_ms))
    }

    /// The pause budget expressed in bytes traced.
    pub fn trace_max(&self) -> Bytes {
        self.trace_max
    }
}

impl TbPolicy for DtbFm {
    fn name(&self) -> &str {
        "DTBFM"
    }

    fn select_boundary(&mut self, ctx: &ScavengeContext<'_>) -> Result<VirtualTime, PolicyError> {
        let Some(last) = ctx.history.last() else {
            return Ok(VirtualTime::ZERO); // initial full collection
        };
        if last.traced > self.trace_max {
            return Ok(mediate(ctx, self.trace_max, last.boundary, last.at));
        }
        // `ratio` is `None` when `Trace_{n-1} = 0`: unbounded slack, collect
        // everything rather than divide by zero.
        let Some(ratio) = self.trace_max.ratio(last.traced) else {
            return Ok(VirtualTime::ZERO);
        };
        let distance = last.at.elapsed_since(last.boundary).as_u64() as f64 * ratio;
        let candidate = if distance >= ctx.now.as_u64() as f64 {
            VirtualTime::ZERO
        } else {
            ctx.now.rewind(Bytes::new(distance as u64))
        };
        Ok(clamp_boundary(candidate, last.at))
    }

    fn constraint(&self) -> Option<Constraint> {
        Some(Constraint::trace(self.trace_max))
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::super::NoSurvivalInfo;
    use super::*;
    use crate::history::ScavengeHistory;
    use crate::time::{Bytes, VirtualTime};

    #[test]
    fn first_scavenge_is_full() {
        let mut p = DtbFm::new(Bytes::new(50));
        let est = NoSurvivalInfo;
        let h = ScavengeHistory::new();
        assert_eq!(
            p.select_boundary(
                &ScavengeContext::at(VirtualTime::from_bytes(100))
                    .mem(Bytes::new(0))
                    .history(&h)
                    .survival(&est)
            ),
            Ok(VirtualTime::ZERO)
        );
    }

    #[test]
    fn under_budget_moves_boundary_backward_proportionally() {
        let mut p = DtbFm::new(Bytes::new(100));
        let est = NoSurvivalInfo;
        let mut h = ScavengeHistory::new();
        // Previous: t=1000, TB=900 (distance 100), traced 50 (half budget).
        h.push(rec(1000, 900, 50, 60, 120));
        let tb = p
            .select_boundary(
                &ScavengeContext::at(VirtualTime::from_bytes(2000))
                    .mem(Bytes::new(0))
                    .history(&h)
                    .survival(&est),
            )
            .unwrap();
        // New distance = 100 · (100/50) = 200 ⇒ TB = 2000 − 200 = 1800…
        // …clamped to t_{n-1} = 1000 so everything allocated since the last
        // scavenge is traced at least once.
        assert_eq!(tb, VirtualTime::from_bytes(1000));
    }

    #[test]
    fn under_budget_distance_growth_visible_when_unclamped() {
        let mut p = DtbFm::new(Bytes::new(100));
        let est = NoSurvivalInfo;
        let mut h = ScavengeHistory::new();
        // Previous: t=10_000, TB=2_000 (distance 8_000), traced 50.
        h.push(rec(10_000, 2_000, 50, 60, 120));
        let tb = p
            .select_boundary(
                &ScavengeContext::at(VirtualTime::from_bytes(11_000))
                    .mem(Bytes::new(0))
                    .history(&h)
                    .survival(&est),
            )
            .unwrap();
        // New distance = 8_000 · 2 = 16_000 > t_n ⇒ full collection.
        assert_eq!(tb, VirtualTime::ZERO);
    }

    #[test]
    fn exact_budget_keeps_distance() {
        let mut p = DtbFm::new(Bytes::new(100));
        let est = NoSurvivalInfo;
        let mut h = ScavengeHistory::new();
        // distance 5_000, traced exactly at budget ⇒ ratio 1.
        h.push(rec(10_000, 5_000, 100, 120, 200));
        let tb = p
            .select_boundary(
                &ScavengeContext::at(VirtualTime::from_bytes(11_000))
                    .mem(Bytes::new(0))
                    .history(&h)
                    .survival(&est),
            )
            .unwrap();
        // TB = 11_000 − 5_000 = 6_000, within [0, t_{n-1}].
        assert_eq!(tb, VirtualTime::from_bytes(6_000));
    }

    #[test]
    fn zero_trace_triggers_full_collection() {
        let mut p = DtbFm::new(Bytes::new(100));
        let est = NoSurvivalInfo;
        let mut h = ScavengeHistory::new();
        h.push(rec(1000, 900, 0, 10, 110));
        assert_eq!(
            p.select_boundary(
                &ScavengeContext::at(VirtualTime::from_bytes(2000))
                    .mem(Bytes::new(0))
                    .history(&h)
                    .survival(&est)
            ),
            Ok(VirtualTime::ZERO)
        );
    }

    #[test]
    fn over_budget_delegates_to_mediation() {
        let mut p = DtbFm::new(Bytes::new(50));
        let est = TableEstimator {
            entries: vec![(150, 35), (250, 45)],
        };
        let mut h = ScavengeHistory::new();
        h.push(rec(100, 0, 90, 90, 150));
        h.push(rec(200, 100, 90, 120, 200));
        let tb = p
            .select_boundary(
                &ScavengeContext::at(VirtualTime::from_bytes(300))
                    .mem(Bytes::new(0))
                    .history(&h)
                    .survival(&est),
            )
            .unwrap();
        assert_eq!(tb, VirtualTime::from_bytes(200)); // same as FEEDMED test
    }

    #[test]
    fn boundary_always_within_legal_range() {
        // Randomized sanity sweep (deterministic inputs).
        let mut p = DtbFm::new(Bytes::new(77));
        let est = NoSurvivalInfo;
        let mut h = ScavengeHistory::new();
        let mut t = 0u64;
        for i in 1..50u64 {
            t += 1000;
            let c = ScavengeContext::at(VirtualTime::from_bytes(t))
                .mem(Bytes::new(i * 13))
                .history(&h)
                .survival(&est);
            let tb = p.select_boundary(&c).unwrap();
            assert!(tb <= c.now);
            if let Some(prev) = h.last() {
                assert!(tb <= prev.at, "must trace everything at least once");
            }
            h.push(rec(t, tb.as_u64(), (i * 29) % 160, i * 7, i * 20));
        }
    }
}
