//! The paper's memory-constrained dynamic boundary policy.

use super::{clamp_boundary, PolicyError, ScavengeContext, TbPolicy};
use crate::constraint::Constraint;
use crate::time::{Bytes, VirtualTime};

/// `DTBMEM`: place the boundary so tenured garbage keeps memory within
/// `Mem_max`.
///
/// Before scavenge *n* the policy budgets for tenured garbage: the memory
/// constraint `Mem_max` minus the live data `L_{n-1}`. Live data cannot be
/// known without a full collection, so it is estimated as
///
/// ```text
/// L_est = (S_{n-1} + Trace_{n-1}) / 2
/// ```
///
/// (the truth lies between the surviving storage, which over-counts by the
/// tenured garbage, and the traced storage, which under-counts by the live
/// immune data). Assuming garbage decays linearly as the boundary moves
/// back in time — with slope given by the garbage-to-memory ratio — the
/// boundary that leaves `Mem_max − L_est` of tenured garbage is
///
/// ```text
/// TB_n = min( t_n · (Mem_max − L_est) / Mem_n ,  t_{n-1} )
/// ```
///
/// clamped below at `0`. The `t_{n-1}` cap makes every object get traced at
/// least once. When the program is *over-constrained* (`L_est ≥ Mem_max` —
/// even perfect collection could not fit in the budget) the numerator
/// vanishes and the policy degrades to a full collection every scavenge,
/// exactly the behaviour Table 4 shows for SIS.
///
/// The first scavenge is full (`TB_0 = 0`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DtbMem {
    mem_max: Bytes,
    estimate: LiveEstimate,
}

/// How `DTBMEM` estimates the live data `L_{n-1}` it cannot measure.
///
/// The paper observes that the truth "must lie somewhere between"
/// `Trace_{n-1}` (under-counts: misses live immune data) and `S_{n-1}`
/// (over-counts: includes tenured garbage) and takes the average. The
/// other two variants exist for the ablation study
/// (`repro_ablation`): how sensitive is constraint-tracking to this
/// design choice?
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum LiveEstimate {
    /// `(S_{n-1} + Trace_{n-1}) / 2` — the paper's choice.
    #[default]
    Midpoint,
    /// `S_{n-1}` — pessimistic: assumes all survivors are live, so the
    /// garbage budget looks smaller and the boundary lands deeper
    /// (more tracing, safer memory margin).
    Surviving,
    /// `Trace_{n-1}` — optimistic: assumes only traced storage is live,
    /// so the boundary lands younger (less tracing, tighter margin).
    Traced,
}

impl DtbMem {
    /// Creates a memory-constrained policy with maximum memory `Mem_max`.
    pub fn new(mem_max: Bytes) -> DtbMem {
        DtbMem {
            mem_max,
            estimate: LiveEstimate::Midpoint,
        }
    }

    /// Creates the policy with an explicit live-data estimator (for the
    /// ablation study; the paper's collector uses
    /// [`LiveEstimate::Midpoint`]).
    pub fn with_estimate(mem_max: Bytes, estimate: LiveEstimate) -> DtbMem {
        DtbMem { mem_max, estimate }
    }

    /// The memory budget.
    pub fn mem_max(&self) -> Bytes {
        self.mem_max
    }

    /// The configured live-data estimator.
    pub fn estimate_kind(&self) -> LiveEstimate {
        self.estimate
    }

    /// The live-data estimate `L_est = (S_{n-1} + Trace_{n-1}) / 2`
    /// (the paper's midpoint estimator).
    pub fn live_estimate(surviving_prev: Bytes, traced_prev: Bytes) -> Bytes {
        surviving_prev.midpoint(traced_prev)
    }

    fn estimate_live(&self, surviving_prev: Bytes, traced_prev: Bytes) -> Bytes {
        match self.estimate {
            LiveEstimate::Midpoint => surviving_prev.midpoint(traced_prev),
            LiveEstimate::Surviving => surviving_prev,
            LiveEstimate::Traced => traced_prev,
        }
    }
}

impl TbPolicy for DtbMem {
    fn name(&self) -> &str {
        "DTBMEM"
    }

    fn select_boundary(&mut self, ctx: &ScavengeContext<'_>) -> Result<VirtualTime, PolicyError> {
        let Some(last) = ctx.history.last() else {
            return Ok(VirtualTime::ZERO); // initial full collection
        };
        let l_est = self.estimate_live(last.surviving, last.traced);
        let Some(garbage_budget) = self.mem_max.checked_sub(l_est) else {
            return Ok(VirtualTime::ZERO); // over-constrained ⇒ degrade to FULL
        };
        // `ratio` is `None` when `Mem_n == 0` (empty heap): degrade to a
        // full collection rather than divide by zero.
        let Some(factor) = garbage_budget.ratio(ctx.mem_before) else {
            return Ok(VirtualTime::ZERO);
        };
        Ok(clamp_boundary(ctx.now.scale(factor), last.at))
    }

    fn constraint(&self) -> Option<Constraint> {
        Some(Constraint::memory(self.mem_max))
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::super::NoSurvivalInfo;
    use super::*;
    use crate::history::ScavengeHistory;
    use crate::time::{Bytes, VirtualTime};

    #[test]
    fn first_scavenge_is_full() {
        let mut p = DtbMem::new(Bytes::new(3000));
        let est = NoSurvivalInfo;
        let h = ScavengeHistory::new();
        assert_eq!(
            p.select_boundary(
                &ScavengeContext::at(VirtualTime::from_bytes(100))
                    .mem(Bytes::new(0))
                    .history(&h)
                    .survival(&est)
            ),
            Ok(VirtualTime::ZERO)
        );
    }

    #[test]
    fn formula_matches_hand_computation() {
        let mut p = DtbMem::new(Bytes::new(3000));
        let est = NoSurvivalInfo;
        let mut h = ScavengeHistory::new();
        // S_{n-1} = 1200, Trace_{n-1} = 800 ⇒ L_est = 1000.
        h.push(rec(10_000, 0, 800, 1200, 2000));
        // Mem_n = 4000 ⇒ factor = (3000−1000)/4000 = 0.5 ⇒ TB = 20_000·0.5.
        let tb = p
            .select_boundary(
                &ScavengeContext::at(VirtualTime::from_bytes(20_000))
                    .mem(Bytes::new(4000))
                    .history(&h)
                    .survival(&est),
            )
            .unwrap();
        assert_eq!(tb, VirtualTime::from_bytes(10_000)); // == t_{n-1}, exactly at the cap
    }

    #[test]
    fn boundary_capped_at_previous_scavenge_time() {
        let mut p = DtbMem::new(Bytes::new(10_000));
        let est = NoSurvivalInfo;
        let mut h = ScavengeHistory::new();
        // Tiny live estimate and huge budget ⇒ raw factor near 1.
        h.push(rec(5_000, 0, 10, 10, 100));
        let tb = p
            .select_boundary(
                &ScavengeContext::at(VirtualTime::from_bytes(20_000))
                    .mem(Bytes::new(100))
                    .history(&h)
                    .survival(&est),
            )
            .unwrap();
        assert_eq!(tb, VirtualTime::from_bytes(5_000));
    }

    #[test]
    fn over_constrained_degrades_to_full() {
        let mut p = DtbMem::new(Bytes::new(500));
        let est = NoSurvivalInfo;
        let mut h = ScavengeHistory::new();
        // L_est = 1000 > Mem_max = 500.
        h.push(rec(10_000, 0, 800, 1200, 2000));
        assert_eq!(
            p.select_boundary(
                &ScavengeContext::at(VirtualTime::from_bytes(20_000))
                    .mem(Bytes::new(4000))
                    .history(&h)
                    .survival(&est)
            ),
            Ok(VirtualTime::ZERO)
        );
    }

    #[test]
    fn tight_budget_yields_young_boundary_when_below_cap() {
        let mut p = DtbMem::new(Bytes::new(1100));
        let est = NoSurvivalInfo;
        let mut h = ScavengeHistory::new();
        // L_est = 1000, budget = 100, Mem_n = 4000 ⇒ factor = 0.025.
        h.push(rec(10_000, 0, 800, 1200, 2000));
        let tb = p
            .select_boundary(
                &ScavengeContext::at(VirtualTime::from_bytes(20_000))
                    .mem(Bytes::new(4000))
                    .history(&h)
                    .survival(&est),
            )
            .unwrap();
        assert_eq!(tb, VirtualTime::from_bytes(500));
    }

    #[test]
    fn empty_heap_full_collects() {
        let mut p = DtbMem::new(Bytes::new(1000));
        let est = NoSurvivalInfo;
        let mut h = ScavengeHistory::new();
        h.push(rec(10_000, 0, 0, 0, 0));
        assert_eq!(
            p.select_boundary(
                &ScavengeContext::at(VirtualTime::from_bytes(20_000))
                    .mem(Bytes::new(0))
                    .history(&h)
                    .survival(&est)
            ),
            Ok(VirtualTime::ZERO)
        );
    }

    #[test]
    fn reports_memory_constraint() {
        let p = DtbMem::new(Bytes::from_kb(3000));
        match p.constraint() {
            Some(Constraint::Memory(b)) => assert_eq!(b, Bytes::from_kb(3000)),
            other => panic!("unexpected constraint {other:?}"),
        }
    }

    #[test]
    fn larger_budget_never_yields_older_boundary() {
        // Monotonicity: more memory budget ⇒ boundary at least as old… the
        // boundary moves *forward* (younger ⇒ less traced) as budget grows.
        let est = NoSurvivalInfo;
        let mut h = ScavengeHistory::new();
        h.push(rec(50_000, 0, 900, 1500, 3000));
        let mut prev = VirtualTime::ZERO;
        for budget in [1_000u64, 1_500, 2_000, 3_000, 5_000, 50_000] {
            let mut p = DtbMem::new(Bytes::new(budget));
            let tb = p
                .select_boundary(
                    &ScavengeContext::at(VirtualTime::from_bytes(60_000))
                        .mem(Bytes::new(5_000))
                        .history(&h)
                        .survival(&est),
                )
                .unwrap();
            assert!(tb >= prev, "budget {budget}: {tb:?} < {prev:?}");
            prev = tb;
        }
    }
}

#[cfg(test)]
mod estimate_tests {
    use super::super::testutil::*;
    use super::super::NoSurvivalInfo;
    use super::*;
    use crate::history::ScavengeHistory;
    use crate::time::{Bytes, VirtualTime};

    #[test]
    fn estimators_order_the_boundary() {
        // Surviving over-estimates live ⇒ smaller garbage budget ⇒ older
        // (smaller) boundary; Traced under-estimates ⇒ younger boundary;
        // Midpoint between.
        let est = NoSurvivalInfo;
        let mut h = ScavengeHistory::new();
        h.push(rec(10_000, 0, 400, 1600, 2400));
        let c = ScavengeContext::at(VirtualTime::from_bytes(20_000))
            .mem(Bytes::new(4_000))
            .history(&h)
            .survival(&est);
        let budget = Bytes::new(2_000);
        let tb_surv = DtbMem::with_estimate(budget, LiveEstimate::Surviving)
            .select_boundary(&c)
            .unwrap();
        let tb_mid = DtbMem::with_estimate(budget, LiveEstimate::Midpoint)
            .select_boundary(&c)
            .unwrap();
        let tb_traced = DtbMem::with_estimate(budget, LiveEstimate::Traced)
            .select_boundary(&c)
            .unwrap();
        assert!(tb_surv <= tb_mid, "{tb_surv:?} > {tb_mid:?}");
        assert!(tb_mid <= tb_traced, "{tb_mid:?} > {tb_traced:?}");
        assert!(tb_surv < tb_traced, "estimators should differ here");
    }

    #[test]
    fn default_is_midpoint() {
        assert_eq!(
            DtbMem::new(Bytes::new(1)).estimate_kind(),
            LiveEstimate::Midpoint
        );
        assert_eq!(LiveEstimate::default(), LiveEstimate::Midpoint);
    }
}
