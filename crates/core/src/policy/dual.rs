//! A dual-constraint policy: both budgets at once.
//!
//! The paper provides one policy per constraint and leaves combining them
//! open ("we allow a memory-constraint policy to be used *instead* if the
//! user so desires"). `DTBDUAL` implements the natural composition: the
//! memory-constrained boundary, clamped forward until the predicted trace
//! fits the pause budget.
//!
//! The two constraints pull in opposite directions — satisfying a pause
//! budget wants a *younger* boundary (less traced), satisfying a memory
//! budget wants an *older* one (less tenured garbage) — so when they
//! conflict one has to win. The pause budget wins here: pauses are the
//! user-visible constraint, and a missed memory target degrades gradually
//! while a missed pause target is a visible freeze.

use super::{DtbFm, DtbMem, PolicyError, ScavengeContext, TbPolicy};
use crate::constraint::Constraint;
use crate::time::{Bytes, VirtualTime};

/// `DTBDUAL`: memory-constrained boundary, pause-budget clamped.
///
/// Selects `max(TB_mem, TB_pause)`: the memory policy proposes a (possibly
/// deep) boundary, and if tracing from there would blow the pause budget,
/// the boundary advances to the youngest point where the predicted trace
/// fits. Both component policies see the same history, so their individual
/// dynamics (backward sweeps, over-constraint degradation) are preserved.
///
/// # Example
///
/// ```
/// use dtb_core::policy::{DtbDual, TbPolicy};
/// use dtb_core::time::Bytes;
///
/// let policy = DtbDual::new(Bytes::new(50_000), Bytes::from_kb(3000));
/// assert_eq!(policy.name(), "DTBDUAL");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DtbDual {
    pause: DtbFm,
    memory: DtbMem,
}

impl DtbDual {
    /// Creates a dual-constraint policy with a trace budget (`Trace_max`)
    /// and a memory budget (`Mem_max`).
    pub fn new(trace_max: Bytes, mem_max: Bytes) -> DtbDual {
        DtbDual {
            pause: DtbFm::new(trace_max),
            memory: DtbMem::new(mem_max),
        }
    }

    /// The pause budget in bytes traced.
    pub fn trace_max(&self) -> Bytes {
        self.pause.trace_max()
    }

    /// The memory budget.
    pub fn mem_max(&self) -> Bytes {
        self.memory.mem_max()
    }
}

impl TbPolicy for DtbDual {
    fn name(&self) -> &str {
        "DTBDUAL"
    }

    fn select_boundary(&mut self, ctx: &ScavengeContext<'_>) -> Result<VirtualTime, PolicyError> {
        let tb_mem = self.memory.select_boundary(ctx)?;
        // Would tracing from the memory boundary fit the pause budget?
        if ctx.survival.surviving_born_after(tb_mem) <= self.trace_max() {
            return Ok(tb_mem);
        }
        // No: let the pause-constrained policy decide, and never go deeper
        // than it allows.
        let tb_pause = self.pause.select_boundary(ctx)?;
        Ok(tb_mem.max(tb_pause))
    }

    fn constraint(&self) -> Option<Constraint> {
        // The binding, user-visible constraint.
        Some(Constraint::trace(self.trace_max()))
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::super::NoSurvivalInfo;
    use super::*;
    use crate::history::ScavengeHistory;
    use crate::time::{Bytes, VirtualTime};

    #[test]
    fn first_scavenge_is_full() {
        let mut p = DtbDual::new(Bytes::new(50_000), Bytes::from_kb(3000));
        let h = ScavengeHistory::new();
        let est = NoSurvivalInfo;
        assert_eq!(
            p.select_boundary(
                &ScavengeContext::at(VirtualTime::from_bytes(100))
                    .mem(Bytes::new(0))
                    .history(&h)
                    .survival(&est)
            ),
            Ok(VirtualTime::ZERO)
        );
    }

    #[test]
    fn memory_boundary_used_when_pause_budget_fits() {
        // Estimator says tracing anything costs nothing: memory wins.
        let mut p = DtbDual::new(Bytes::new(50_000), Bytes::new(3000));
        let est = NoSurvivalInfo;
        let mut h = ScavengeHistory::new();
        h.push(rec(10_000, 0, 800, 1200, 2000));
        let mut mem_only = DtbMem::new(Bytes::new(3000));
        let c = ScavengeContext::at(VirtualTime::from_bytes(20_000))
            .mem(Bytes::new(4000))
            .history(&h)
            .survival(&est);
        assert_eq!(p.select_boundary(&c), mem_only.select_boundary(&c));
    }

    #[test]
    fn pause_budget_clamps_a_too_deep_memory_boundary() {
        // Over-constrained memory wants TB = 0, but tracing everything
        // would cost 1 MB against a 50 KB budget: the boundary advances.
        let mut p = DtbDual::new(Bytes::new(50_000), Bytes::new(100));
        let est = TableEstimator {
            // Live bytes born after 0 are huge; born after t=10_000 small.
            entries: vec![(5_000, 1_000_000), (15_000, 10_000)],
        };
        let mut h = ScavengeHistory::new();
        // Previous scavenge blew the pause budget, so the pause policy
        // mediates with the estimator instead of extrapolating.
        h.push(rec(10_000, 0, 90_000, 1200, 92_000));
        let tb = p
            .select_boundary(
                &ScavengeContext::at(VirtualTime::from_bytes(20_000))
                    .mem(Bytes::new(4000))
                    .history(&h)
                    .survival(&est),
            )
            .unwrap();
        assert!(
            tb > VirtualTime::ZERO,
            "pause budget should veto the full collection"
        );
    }

    #[test]
    fn reports_the_pause_constraint() {
        let p = DtbDual::new(Bytes::new(50_000), Bytes::from_kb(3000));
        assert_eq!(p.constraint(), Some(Constraint::trace(Bytes::new(50_000))));
        assert_eq!(p.trace_max(), Bytes::new(50_000));
        assert_eq!(p.mem_max(), Bytes::from_kb(3000));
    }

    #[test]
    fn boundary_always_legal() {
        let mut p = DtbDual::new(Bytes::new(77), Bytes::new(5_000));
        let est = NoSurvivalInfo;
        let mut h = ScavengeHistory::new();
        let mut t = 0u64;
        for i in 1..40u64 {
            t += 1_000;
            let c = ScavengeContext::at(VirtualTime::from_bytes(t))
                .mem(Bytes::new(i * 100))
                .history(&h)
                .survival(&est);
            let tb = p.select_boundary(&c).unwrap();
            assert!(tb <= c.now);
            if let Some(prev) = h.last() {
                assert!(tb <= prev.at);
            }
            h.push(rec(t, tb.as_u64(), (i * 31) % 200, i * 11, i * 25));
        }
    }
}
