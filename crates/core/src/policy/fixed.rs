//! Classic generational collection: `TB_n ← t_{n-k}`.

use super::{PolicyError, ScavengeContext, TbPolicy};
use crate::time::VirtualTime;

/// `FIXED-k`: the threatening boundary is pinned `k` scavenges in the past.
///
/// This models a traditional two-generation collector whose promotion
/// policy tenures objects after surviving `k` collections: at scavenge `n`
/// the boundary is `t_{n-k}`, so anything that has survived `k` scavenges is
/// immune. The paper evaluates `FIXED1` (tenure after one survival — lowest
/// CPU overhead, unbounded tenured garbage) and `FIXED4`.
///
/// Until `k` scavenges have completed the boundary is `0`, i.e. the first
/// few collections are full — matching the paper's convention that every
/// collector starts with a full collection.
///
/// # Example
///
/// ```
/// use dtb_core::policy::{Fixed, TbPolicy};
///
/// let fixed1 = Fixed::new(1);
/// let fixed4 = Fixed::new(4);
/// assert_eq!(fixed1.name(), "FIXED1");
/// assert_eq!(fixed4.name(), "FIXED4");
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fixed {
    k: usize,
    name: String,
}

impl Fixed {
    /// Creates a `FIXED-k` policy.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`: the boundary would be the current scavenge time,
    /// threatening nothing that has ever been scavenged *or allocated* — the
    /// degenerate "collect nothing" collector.
    pub fn new(k: usize) -> Fixed {
        assert!(k > 0, "FIXED-k requires k >= 1");
        Fixed {
            k,
            name: format!("FIXED{k}"),
        }
    }

    /// The number of scavenges an object must survive before tenure.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl TbPolicy for Fixed {
    fn name(&self) -> &str {
        &self.name
    }

    fn select_boundary(&mut self, ctx: &ScavengeContext<'_>) -> Result<VirtualTime, PolicyError> {
        Ok(ctx
            .history
            .back(self.k)
            .map(|r| r.at)
            .unwrap_or(VirtualTime::ZERO))
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::super::NoSurvivalInfo;
    use super::*;
    use crate::history::ScavengeHistory;
    use crate::time::{Bytes, VirtualTime};

    #[test]
    fn fixed1_tracks_previous_scavenge_time() {
        let mut p = Fixed::new(1);
        let est = NoSurvivalInfo;
        let mut h = ScavengeHistory::new();
        assert_eq!(
            p.select_boundary(
                &ScavengeContext::at(VirtualTime::from_bytes(100))
                    .mem(Bytes::new(0))
                    .history(&h)
                    .survival(&est)
            ),
            Ok(VirtualTime::ZERO)
        );
        h.push(rec(100, 0, 10, 10, 20));
        assert_eq!(
            p.select_boundary(
                &ScavengeContext::at(VirtualTime::from_bytes(200))
                    .mem(Bytes::new(0))
                    .history(&h)
                    .survival(&est)
            ),
            Ok(VirtualTime::from_bytes(100))
        );
        h.push(rec(200, 100, 5, 12, 30));
        assert_eq!(
            p.select_boundary(
                &ScavengeContext::at(VirtualTime::from_bytes(300))
                    .mem(Bytes::new(0))
                    .history(&h)
                    .survival(&est)
            ),
            Ok(VirtualTime::from_bytes(200))
        );
    }

    #[test]
    fn fixed4_is_full_until_four_scavenges_exist() {
        let mut p = Fixed::new(4);
        let est = NoSurvivalInfo;
        let mut h = ScavengeHistory::new();
        for (i, t) in [100u64, 200, 300].iter().enumerate() {
            assert_eq!(
                p.select_boundary(
                    &ScavengeContext::at(VirtualTime::from_bytes(*t))
                        .mem(Bytes::new(0))
                        .history(&h)
                        .survival(&est)
                ),
                Ok(VirtualTime::ZERO),
                "scavenge {i} should still be full"
            );
            h.push(rec(*t, 0, 1, 1, 2));
        }
        h.push(rec(400, 0, 1, 1, 2));
        // With four completed scavenges, boundary is t_{n-4} = 100.
        assert_eq!(
            p.select_boundary(
                &ScavengeContext::at(VirtualTime::from_bytes(500))
                    .mem(Bytes::new(0))
                    .history(&h)
                    .survival(&est)
            ),
            Ok(VirtualTime::from_bytes(100))
        );
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn k_zero_rejected() {
        let _ = Fixed::new(0);
    }

    #[test]
    fn name_includes_k() {
        assert_eq!(Fixed::new(7).name(), "FIXED7");
        assert_eq!(Fixed::new(7).k(), 7);
    }
}
