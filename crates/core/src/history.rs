//! Scavenge history: the per-collection records policies consult.
//!
//! Every boundary policy in Table 1 of the paper is a function of previous
//! scavenge outcomes: `FIXED-k` needs `t_{n-k}`, Feedback Mediation needs
//! every `t_k` since the last boundary, and the DTB policies need the last
//! traced / surviving amounts. [`ScavengeHistory`] records each completed
//! scavenge as a [`ScavengeRecord`] and provides the lookups the policies
//! use.

use crate::time::{Bytes, VirtualTime};
use serde::{Deserialize, Serialize};

/// The outcome of one completed scavenge.
///
/// Field names follow the paper's notation for scavenge *n*:
/// `t_n` ([`ScavengeRecord::at`]), `TB_n` ([`ScavengeRecord::boundary`]),
/// `Trace_n` ([`ScavengeRecord::traced`]), `S_n`
/// ([`ScavengeRecord::surviving`]) and `Mem_n`
/// ([`ScavengeRecord::mem_before`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScavengeRecord {
    /// `t_n`: the allocation-clock time at which the scavenge ran.
    pub at: VirtualTime,
    /// `TB_n`: the threatening boundary the policy selected.
    pub boundary: VirtualTime,
    /// `Trace_n`: bytes of reachable threatened storage traced.
    pub traced: Bytes,
    /// `S_n`: bytes surviving the scavenge (live storage plus tenured
    /// garbage), i.e. memory in use immediately afterwards.
    pub surviving: Bytes,
    /// Bytes reclaimed by this scavenge.
    pub reclaimed: Bytes,
    /// `Mem_n`: memory in use immediately before the scavenge.
    pub mem_before: Bytes,
}

impl ScavengeRecord {
    /// Memory accounting invariant: what was in use beforehand either
    /// survived or was reclaimed.
    pub fn is_consistent(&self) -> bool {
        self.mem_before == self.surviving + self.reclaimed
    }
}

/// An append-only log of completed scavenges.
///
/// # Example
///
/// ```
/// use dtb_core::history::{ScavengeHistory, ScavengeRecord};
/// use dtb_core::time::{Bytes, VirtualTime};
///
/// let mut h = ScavengeHistory::new();
/// assert!(h.is_empty());
/// h.push(ScavengeRecord {
///     at: VirtualTime::from_bytes(1_000_000),
///     boundary: VirtualTime::ZERO,
///     traced: Bytes::new(120_000),
///     surviving: Bytes::new(120_000),
///     reclaimed: Bytes::new(880_000),
///     mem_before: Bytes::new(1_000_000),
/// });
/// assert_eq!(h.len(), 1);
/// assert_eq!(h.last().unwrap().traced, Bytes::new(120_000));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ScavengeHistory {
    records: Vec<ScavengeRecord>,
}

impl ScavengeHistory {
    /// Creates an empty history (const, so statics can hold one).
    pub const fn new() -> ScavengeHistory {
        ScavengeHistory {
            records: Vec::new(),
        }
    }

    /// Appends the record of a just-completed scavenge.
    ///
    /// # Panics
    ///
    /// Panics if `record.at` is earlier than the previous scavenge's time:
    /// scavenges happen in allocation order.
    pub fn push(&mut self, record: ScavengeRecord) {
        if let Some(last) = self.records.last() {
            assert!(
                record.at >= last.at,
                "scavenge times must be non-decreasing: {:?} after {:?}",
                record.at,
                last.at
            );
        }
        self.records.push(record);
    }

    /// Number of completed scavenges (the paper's `n`).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no scavenge has completed yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The most recent scavenge (`n-1`), if any.
    pub fn last(&self) -> Option<&ScavengeRecord> {
        self.records.last()
    }

    /// The record of the `k`-th most recent scavenge: `back(1)` is the last
    /// one, `back(4)` the fourth-last (used by `FIXED4`).
    ///
    /// Returns `None` when fewer than `k` scavenges have completed or
    /// `k == 0`.
    pub fn back(&self, k: usize) -> Option<&ScavengeRecord> {
        if k == 0 {
            return None;
        }
        self.records.len().checked_sub(k).map(|i| &self.records[i])
    }

    /// The record of scavenge `k` counting from the first (0-based).
    pub fn get(&self, k: usize) -> Option<&ScavengeRecord> {
        self.records.get(k)
    }

    /// Iterates over all completed scavenges, oldest first.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &ScavengeRecord> {
        self.records.iter()
    }

    /// Scavenge times `t_0 .. t_{n-1}` at or after `from`, oldest first,
    /// together with their indices.
    ///
    /// Feedback Mediation searches this list for the oldest admissible
    /// boundary.
    pub fn times_at_or_after(
        &self,
        from: VirtualTime,
    ) -> impl Iterator<Item = (usize, VirtualTime)> + '_ {
        let start = self.split_at_or_after(from);
        self.records[start..]
            .iter()
            .enumerate()
            .map(move |(i, r)| (start + i, r.at))
    }

    /// The candidate boundaries at or after `from`, as a sorted view the
    /// inverse survival query
    /// ([`SurvivalEstimator::oldest_boundary_within`](crate::policy::SurvivalEstimator::oldest_boundary_within))
    /// can both iterate and binary-search.
    pub fn candidates_at_or_after(&self, from: VirtualTime) -> BoundaryCandidates<'_> {
        BoundaryCandidates {
            records: &self.records[self.split_at_or_after(from)..],
        }
    }

    /// Index of the first record with `at >= from`. Records are pushed
    /// with non-decreasing `at` (enforced by [`ScavengeHistory::push`]),
    /// so one binary search replaces the old linear filter.
    fn split_at_or_after(&self, from: VirtualTime) -> usize {
        self.records.partition_point(|r| r.at < from)
    }

    /// Total bytes traced over the whole history.
    pub fn total_traced(&self) -> Bytes {
        self.records.iter().map(|r| r.traced).sum()
    }

    /// Total bytes reclaimed over the whole history.
    pub fn total_reclaimed(&self) -> Bytes {
        self.records.iter().map(|r| r.reclaimed).sum()
    }
}

/// A sorted run of candidate boundary times — the scavenge times a
/// mediating policy may move the boundary to.
///
/// Produced by [`ScavengeHistory::candidates_at_or_after`]; consumed by
/// [`SurvivalEstimator::oldest_boundary_within`](crate::policy::SurvivalEstimator::oldest_boundary_within).
/// Times ascend (scavenges complete in allocation order), which is what
/// lets an estimator answer the inverse query with a binary search
/// instead of probing candidates one by one.
#[derive(Clone, Copy, Debug)]
pub struct BoundaryCandidates<'a> {
    records: &'a [ScavengeRecord],
}

impl<'a> BoundaryCandidates<'a> {
    /// A view over explicit records (ascending `at`); mainly for tests —
    /// policies get their candidates from the history.
    pub fn over(records: &'a [ScavengeRecord]) -> BoundaryCandidates<'a> {
        debug_assert!(
            records.windows(2).all(|w| w[0].at <= w[1].at),
            "candidate times must ascend"
        );
        BoundaryCandidates { records }
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when there are no candidates.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Candidate times, oldest first.
    pub fn times(&self) -> impl Iterator<Item = VirtualTime> + 'a {
        self.records.iter().map(|r| r.at)
    }

    /// The oldest candidate, if any.
    pub fn first(&self) -> Option<VirtualTime> {
        self.records.first().map(|r| r.at)
    }

    /// The oldest candidate at or after `threshold`, by binary search.
    pub fn first_at_or_after(&self, threshold: VirtualTime) -> Option<VirtualTime> {
        let i = self.records.partition_point(|r| r.at < threshold);
        self.records.get(i).map(|r| r.at)
    }
}

impl<'a> IntoIterator for &'a ScavengeHistory {
    type Item = &'a ScavengeRecord;
    type IntoIter = std::slice::Iter<'a, ScavengeRecord>;
    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

impl FromIterator<ScavengeRecord> for ScavengeHistory {
    fn from_iter<I: IntoIterator<Item = ScavengeRecord>>(iter: I) -> Self {
        let mut h = ScavengeHistory::new();
        for r in iter {
            h.push(r);
        }
        h
    }
}

impl Extend<ScavengeRecord> for ScavengeHistory {
    fn extend<I: IntoIterator<Item = ScavengeRecord>>(&mut self, iter: I) {
        for r in iter {
            self.push(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(at: u64, traced: u64) -> ScavengeRecord {
        ScavengeRecord {
            at: VirtualTime::from_bytes(at),
            boundary: VirtualTime::ZERO,
            traced: Bytes::new(traced),
            surviving: Bytes::new(traced),
            reclaimed: Bytes::ZERO,
            mem_before: Bytes::new(traced),
        }
    }

    #[test]
    fn back_indexing_matches_paper_notation() {
        let h: ScavengeHistory = (1..=5).map(|i| rec(i * 100, i)).collect();
        // back(1) is t_{n-1}, the most recent.
        assert_eq!(h.back(1).unwrap().at, VirtualTime::from_bytes(500));
        assert_eq!(h.back(4).unwrap().at, VirtualTime::from_bytes(200));
        assert_eq!(h.back(5).unwrap().at, VirtualTime::from_bytes(100));
        assert!(h.back(6).is_none());
        assert!(h.back(0).is_none());
    }

    #[test]
    fn empty_history_has_no_last() {
        let h = ScavengeHistory::new();
        assert!(h.last().is_none());
        assert!(h.is_empty());
        assert_eq!(h.total_traced(), Bytes::ZERO);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn out_of_order_push_rejected() {
        let mut h = ScavengeHistory::new();
        h.push(rec(200, 1));
        h.push(rec(100, 1));
    }

    #[test]
    fn times_at_or_after_filters_and_orders() {
        let h: ScavengeHistory = [rec(100, 1), rec(200, 2), rec(300, 3)]
            .into_iter()
            .collect();
        let times: Vec<_> = h.times_at_or_after(VirtualTime::from_bytes(150)).collect();
        assert_eq!(
            times,
            vec![
                (1, VirtualTime::from_bytes(200)),
                (2, VirtualTime::from_bytes(300))
            ]
        );
    }

    #[test]
    fn totals_accumulate() {
        let h: ScavengeHistory = [rec(100, 10), rec(200, 20)].into_iter().collect();
        assert_eq!(h.total_traced(), Bytes::new(30));
    }

    #[test]
    fn record_consistency_check() {
        let ok = ScavengeRecord {
            at: VirtualTime::from_bytes(10),
            boundary: VirtualTime::ZERO,
            traced: Bytes::new(4),
            surviving: Bytes::new(6),
            reclaimed: Bytes::new(4),
            mem_before: Bytes::new(10),
        };
        assert!(ok.is_consistent());
        let bad = ScavengeRecord {
            reclaimed: Bytes::new(5),
            ..ok
        };
        assert!(!bad.is_consistent());
    }
}
