//! Where the free-function runners went.
//!
//! This module used to hold four free-function runners predating the
//! [`Evaluation`](crate::exec::Evaluation) builder. They recompiled
//! preset traces per call-site and ran strictly serially; the builder
//! shares one compiled trace per preset process-wide, fans the matrix
//! over a worker pool, and isolates per-cell faults. The wrappers were
//! deprecated in 0.2.0 and have been removed; the migration map stays
//! here for anyone landing on an old call-site:
//!
//! | removed | replacement |
//! |---|---|
//! | `run_program(p, k, cfg, sim)` | `Evaluation::new().programs([p]).policies([k]).baselines(false).policy_config(cfg).sim_config(sim).run()` |
//! | `run_trace(&t, k, cfg, sim)` | `simulate(&t, &mut k.build(&cfg), &sim)` |
//! | `run_column(&t, cfg, sim)` | `Evaluation::new().trace(t).policy_config(cfg).sim_config(sim).run()` |
//! | `run_matrix(cfg, sim)` | `Evaluation::new().policy_config(cfg).sim_config(sim).run()` |
//!
//! Streaming sources have no free-function form at all: use
//! [`Evaluation::source`](crate::exec::Evaluation::source) for matrix
//! columns or [`simulate_source`](crate::engine::simulate_source)
//! directly.

#[cfg(test)]
mod tests {
    use crate::engine::SimConfig;
    use crate::exec::Evaluation;
    use crate::metrics::SimReport;
    use dtb_core::policy::PolicyConfig;
    use dtb_trace::programs::Program;

    #[test]
    fn column_contains_all_rows_in_table_order() {
        // Use the smallest program to keep debug-build time down.
        let matrix = Evaluation::new()
            .programs([Program::Cfrac])
            .policy_config(PolicyConfig::paper())
            .sim_config(SimConfig::paper())
            .run();
        let reports: Vec<&SimReport> = matrix.columns()[0].reports().collect();
        let labels: Vec<&str> = reports.iter().map(|r| r.policy.as_str()).collect();
        assert_eq!(
            labels,
            ["FULL", "FIXED1", "FIXED4", "DTBMEM", "FEEDMED", "DTBFM", "No GC", "LIVE"]
        );
        // Sanity: every collector's memory sits between LIVE and No GC.
        let nogc = reports[6];
        let live = reports[7];
        for r in &reports[..6] {
            assert!(r.mem_max <= nogc.mem_max, "{} exceeds No GC", r.policy);
            assert!(r.mem_mean >= live.mem_mean, "{} beats LIVE", r.policy);
        }
    }
}
