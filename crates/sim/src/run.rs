//! Convenience runners: one program × one collector, or the full matrix.

use crate::baseline::{live_report, no_gc_report};
use crate::engine::{simulate, SimConfig, SimRun};
use crate::metrics::SimReport;
use dtb_core::policy::{PolicyConfig, PolicyKind};
use dtb_trace::event::CompiledTrace;
use dtb_trace::programs::Program;

/// Runs one collector over one workload preset.
///
/// Generates and compiles the program trace, then simulates.
pub fn run_program(program: Program, kind: PolicyKind, cfg: &PolicyConfig, sim: &SimConfig) -> SimRun {
    let trace = program
        .generate()
        .compile()
        .expect("preset traces are well-formed");
    run_trace(&trace, kind, cfg, sim)
}

/// Runs one collector over an already-compiled trace.
pub fn run_trace(
    trace: &CompiledTrace,
    kind: PolicyKind,
    cfg: &PolicyConfig,
    sim: &SimConfig,
) -> SimRun {
    let mut policy = kind.build(cfg);
    simulate(trace, &mut policy, sim)
}

/// All six collectors plus the `No GC` / `LIVE` baselines over one trace —
/// one full column of Tables 2–4.
pub fn run_column(trace: &CompiledTrace, cfg: &PolicyConfig, sim: &SimConfig) -> Vec<SimReport> {
    let mut reports: Vec<SimReport> = PolicyKind::ALL
        .iter()
        .map(|kind| run_trace(trace, *kind, cfg, sim).report)
        .collect();
    reports.push(no_gc_report(trace));
    reports.push(live_report(trace));
    reports
}

/// The full evaluation matrix: every collector over every workload.
///
/// Returns one `Vec<SimReport>` per program, in [`Program::ALL`] order.
/// This regenerates the raw data behind Tables 2, 3 and 4 (a few seconds
/// in release builds; slow under `cargo test` without `--release`).
pub fn run_matrix(cfg: &PolicyConfig, sim: &SimConfig) -> Vec<(Program, Vec<SimReport>)> {
    Program::ALL
        .iter()
        .map(|p| {
            let trace = p
                .generate()
                .compile()
                .expect("preset traces are well-formed");
            (*p, run_column(&trace, cfg, sim))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_contains_all_rows_in_table_order() {
        // Use the smallest program to keep debug-build time down.
        let trace = Program::Cfrac.generate().compile().unwrap();
        let reports = run_column(&trace, &PolicyConfig::paper(), &SimConfig::paper());
        let labels: Vec<&str> = reports.iter().map(|r| r.policy.as_str()).collect();
        assert_eq!(
            labels,
            [
                "FULL", "FIXED1", "FIXED4", "DTBMEM", "FEEDMED", "DTBFM", "No GC", "LIVE"
            ]
        );
        // Sanity: every collector's memory sits between LIVE and No GC.
        let nogc = &reports[6];
        let live = &reports[7];
        for r in &reports[..6] {
            assert!(r.mem_max <= nogc.mem_max, "{} exceeds No GC", r.policy);
            assert!(r.mem_mean >= live.mem_mean, "{} beats LIVE", r.policy);
        }
    }

    #[test]
    fn run_program_matches_run_trace() {
        let via_program = run_program(
            Program::Cfrac,
            PolicyKind::Full,
            &PolicyConfig::paper(),
            &SimConfig::paper(),
        );
        let trace = Program::Cfrac.generate().compile().unwrap();
        let via_trace = run_trace(
            &trace,
            PolicyKind::Full,
            &PolicyConfig::paper(),
            &SimConfig::paper(),
        );
        assert_eq!(via_program.report, via_trace.report);
    }
}
