//! Deprecated free-function runners, kept as thin wrappers.
//!
//! These predate the [`Evaluation`](crate::exec::Evaluation) builder. They
//! recompile preset traces per call-site and run strictly serially; the
//! builder shares one compiled trace per preset process-wide and fans the
//! matrix over a worker pool. Migration map:
//!
//! | old | new |
//! |---|---|
//! | `run_program(p, k, cfg, sim)` | `Evaluation::new().programs([p]).policies([k]).baselines(false).policy_config(cfg).sim_config(sim).run()` |
//! | `run_trace(&t, k, cfg, sim)` | `simulate(&t, &mut k.build(&cfg), &sim)` |
//! | `run_column(&t, cfg, sim)` | `Evaluation::new().trace(t).policy_config(cfg).sim_config(sim).run()` |
//! | `run_matrix(cfg, sim)` | `Evaluation::new().policy_config(cfg).sim_config(sim).run()` |

use crate::engine::{simulate, SimConfig, SimRun};
use crate::error::SimError;
use crate::exec::Evaluation;
use crate::metrics::SimReport;
use dtb_core::policy::{PolicyConfig, PolicyKind};
use dtb_trace::event::CompiledTrace;
use dtb_trace::programs::Program;
use std::sync::Arc;

/// Runs one collector over one workload preset.
#[deprecated(
    since = "0.2.0",
    note = "use dtb_sim::exec::Evaluation (programs + policies builder)"
)]
pub fn run_program(
    program: Program,
    kind: PolicyKind,
    cfg: &PolicyConfig,
    sim: &SimConfig,
) -> Result<SimRun, SimError> {
    let trace = program.compiled();
    let mut policy = kind.build(cfg);
    simulate(&trace, &mut policy, sim)
}

/// Runs one collector over an already-compiled trace.
#[deprecated(
    since = "0.2.0",
    note = "call dtb_sim::simulate with kind.build(&cfg) directly"
)]
pub fn run_trace(
    trace: &CompiledTrace,
    kind: PolicyKind,
    cfg: &PolicyConfig,
    sim: &SimConfig,
) -> Result<SimRun, SimError> {
    let mut policy = kind.build(cfg);
    simulate(trace, &mut policy, sim)
}

/// All six collectors plus the `No GC` / `LIVE` baselines over one trace —
/// one full column of Tables 2–4.
#[deprecated(
    since = "0.2.0",
    note = "use dtb_sim::exec::Evaluation::new().trace(...) and read the column"
)]
pub fn run_column(trace: &CompiledTrace, cfg: &PolicyConfig, sim: &SimConfig) -> Vec<SimReport> {
    Evaluation::new()
        .trace(Arc::new(trace.clone()))
        .policy_config(*cfg)
        .sim_config(*sim)
        .run()
        .columns()[0]
        .reports()
        .cloned()
        .collect()
}

/// The full evaluation matrix: every collector over every workload.
///
/// Returns one `Vec<SimReport>` per program, in [`Program::ALL`] order.
#[deprecated(
    since = "0.2.0",
    note = "use dtb_sim::exec::Evaluation::new().run() and the typed Matrix"
)]
pub fn run_matrix(cfg: &PolicyConfig, sim: &SimConfig) -> Vec<(Program, Vec<SimReport>)> {
    Evaluation::new()
        .policy_config(*cfg)
        .sim_config(*sim)
        .run()
        .columns()
        .iter()
        .filter_map(|col| col.program.map(|p| (p, col.reports().cloned().collect())))
        .collect()
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;

    #[test]
    fn column_contains_all_rows_in_table_order() {
        // Use the smallest program to keep debug-build time down.
        let trace = Program::Cfrac.compiled();
        let reports = run_column(&trace, &PolicyConfig::paper(), &SimConfig::paper());
        let labels: Vec<&str> = reports.iter().map(|r| r.policy.as_str()).collect();
        assert_eq!(
            labels,
            ["FULL", "FIXED1", "FIXED4", "DTBMEM", "FEEDMED", "DTBFM", "No GC", "LIVE"]
        );
        // Sanity: every collector's memory sits between LIVE and No GC.
        let nogc = &reports[6];
        let live = &reports[7];
        for r in &reports[..6] {
            assert!(r.mem_max <= nogc.mem_max, "{} exceeds No GC", r.policy);
            assert!(r.mem_mean >= live.mem_mean, "{} beats LIVE", r.policy);
        }
    }

    #[test]
    fn wrappers_match_the_builder() {
        let via_wrapper = run_program(
            Program::Cfrac,
            PolicyKind::Full,
            &PolicyConfig::paper(),
            &SimConfig::paper(),
        )
        .unwrap();
        let matrix = Evaluation::new()
            .programs([Program::Cfrac])
            .policies([PolicyKind::Full])
            .baselines(false)
            .run();
        assert_eq!(
            matrix.get(Program::Cfrac, PolicyKind::Full),
            Some(&via_wrapper.report)
        );
        let via_trace = run_trace(
            &Program::Cfrac.compiled(),
            PolicyKind::Full,
            &PolicyConfig::paper(),
            &SimConfig::paper(),
        )
        .unwrap();
        assert_eq!(via_wrapper.report, via_trace.report);
    }
}
