//! The deterministic intra-cell parallel engine.
//!
//! One simulation cell (one trace × one policy) is an inherently
//! sequential replay: every scavenge depends on the heap state left by
//! the previous one. What is *not* sequential is building the indices
//! the replay consults. Under the paper's allocation trigger
//! ([`Trigger::Allocation`]), scavenge instants are a pure function of
//! the allocation prefix — every `n` bytes allocated — so the event
//! stream partitions into **epochs** at scavenge boundaries before any
//! simulation happens. Workers then build one partial heap index per
//! epoch (a live-bytes [`Fenwick`] keyed by in-epoch birth order, plus
//! the epoch's deaths sorted by time) fully in parallel, and a single
//! **drive** pass replays the events against an [`EpochHeap`] that
//! aggregates the partial indices: an epoch-level Fenwick pair answers
//! cross-epoch survival and scavenge accounting in `O(log E)`, the
//! per-epoch trees answer the boundary epoch's share in `O(log m)`.
//!
//! # Bit-identity
//!
//! The drive replays every event in trace order through the *same*
//! [`scavenge_now`] the serial engine uses — same metrics calls in the
//! same f64 operation order, same error construction, same invariant
//! checks, same curve points — and the [`EpochHeap`] answers every heap
//! query (`mem_in_use`, `live_bytes_at`, survival, scavenge outcomes)
//! with exactly the integers the serial [`OracleHeap`] would produce.
//! Survival's inverse query ([`SurvivalEstimator::oldest_boundary_within`])
//! deliberately stays on the trait's default candidate scan: the scan is
//! the specification the serial heap's Fenwick descent is proven (and
//! tested) equal to, so matching it is equality by definition rather
//! than by a second parallel proof. `threads(1)` and `threads(k)`
//! therefore return the same [`SimRun`] bit for bit.
//!
//! # Eligibility and cost
//!
//! [`Sim::threads`](crate::engine::Sim::threads) routes here only for
//! allocation-triggered, non-checkpointing, non-resuming runs over the
//! default heap; everything else falls back to the serial engine (which
//! is observably the same thing). Unlike the serial engine's O(live set)
//! streaming, the parallel engine buffers the whole event stream to hand
//! epochs to workers, so it trades memory for wall-clock — the right
//! trade inside an evaluation cell, the wrong one for an unbounded
//! synthetic source (cap such runs with [`SimBudget::events`], which the
//! pre-read honors).
//!
//! [`Trigger::Allocation`]: crate::trigger::Trigger
//! [`SimBudget::events`]: crate::engine::SimBudget
//! [`OracleHeap`]: crate::heap::OracleHeap
//! [`SurvivalEstimator::oldest_boundary_within`]:
//!     dtb_core::policy::SurvivalEstimator::oldest_boundary_within

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

use crate::curve::{CurvePoint, MemoryCurve};
use crate::engine::{run_serial, scavenge_now, Ledger, RunControl, SimConfig, SimRun};
use crate::error::{BudgetKind, InvariantViolation, SimError};
use crate::heap::fenwick::Fenwick;
use crate::heap::{OracleHeap, ScavengeOutcome, SimHeap, SimObject};
use crate::metrics::MetricsCollector;
use crate::trigger::Trigger;
use dtb_core::policy::{SurvivalEstimator, SurvivalLender, TbPolicy};
use dtb_core::time::{Bytes, VirtualTime};
use dtb_trace::{EventSource, ObjectLife, SourceError};

/// One epoch's share of the heap index, built by a worker without any
/// knowledge of the other epochs.
struct EpochState {
    /// The epoch's events, in trace order.
    records: Vec<ObjectLife>,
    /// Live bytes per in-epoch slot; deaths move bytes out as the drive's
    /// clock passes them.
    live: Fenwick,
    /// `(death, in-epoch slot)` for every record with a death, sorted —
    /// the epoch's contribution to the global death stream.
    death_order: Vec<(VirtualTime, u32)>,
    /// Next entry of `death_order` to apply.
    cursor: usize,
    /// Dead-but-unreclaimed in-epoch slots, in death order.
    garbage: Vec<u32>,
    /// Bytes currently in `garbage`.
    dead_bytes: u64,
}

/// Builds one epoch's partial index. This is the work that fans out.
fn prepare_epoch(records: Vec<ObjectLife>) -> EpochState {
    let mut live = Fenwick::with_capacity(records.len());
    live.extend(records.iter().map(|r| r.size as u64));
    let mut death_order: Vec<(VirtualTime, u32)> = records
        .iter()
        .enumerate()
        .filter_map(|(i, r)| r.death.map(|d| (d, i as u32)))
        .collect();
    death_order.sort_unstable();
    EpochState {
        records,
        live,
        death_order,
        cursor: 0,
        garbage: Vec::new(),
        dead_bytes: 0,
    }
}

/// A heap over per-epoch partial indices, merged through epoch-level
/// Fenwick aggregates.
///
/// Observable-equal to [`OracleHeap`] for the engine's query pattern:
/// strictly increasing birth insertions, monotone query times, survival
/// and scavenge queries only at epoch boundaries (where every object of
/// the current epoch has been inserted). Mid-epoch it answers only the
/// counter-backed queries (`mem_in_use`, `live_bytes_at`), which is all
/// the engine asks between scavenges.
pub(crate) struct EpochHeap {
    epochs: Vec<EpochState>,
    /// Live bytes per *activated* epoch (aggregate of each epoch's
    /// `live` tree).
    epoch_live: Fenwick,
    /// Dead-but-unreclaimed bytes per activated epoch.
    epoch_dead: Fenwick,
    /// `(next death, epoch)` per activated epoch with deaths remaining.
    next_death: BinaryHeap<Reverse<(VirtualTime, u32)>>,
    /// Epochs whose indices are live in the aggregates: `0..activated`.
    /// An epoch activates when its first record is inserted, so at any
    /// query instant the aggregates cover exactly the events the serial
    /// heap would have seen. (Unborn records of the current epoch cannot
    /// perturb anything: deaths precede births never, so their deaths
    /// are strictly in the future, and the byte counters below are
    /// insert-driven.)
    activated: usize,
    /// In-epoch count of inserted records of epoch `activated - 1`.
    born: usize,
    /// Bytes occupying memory: inserts add, scavenges subtract.
    mem: u64,
    /// Dead-but-unreclaimed bytes across all epochs.
    dead: u64,
    /// Objects occupying memory (inserted minus reclaimed).
    resident: usize,
    /// Reusable epoch batch for the aggregate-tree updates in
    /// [`EpochHeap::advance_clock`]: consecutive deaths usually land in
    /// the same epoch, so the run-length-merged batch turns per-death
    /// tree walks into one [`Fenwick::add_many`]/[`Fenwick::sub_many`]
    /// pair.
    scratch_epochs: Vec<u32>,
    /// Byte deltas paired with `scratch_epochs`.
    scratch_deltas: Vec<u64>,
    /// Query-time high-water mark, as in the serial heap.
    clock: VirtualTime,
}

impl EpochHeap {
    fn from_epochs(epochs: Vec<EpochState>) -> EpochHeap {
        let n = epochs.len();
        EpochHeap {
            epochs,
            epoch_live: Fenwick::with_capacity(n),
            epoch_dead: Fenwick::with_capacity(n),
            next_death: BinaryHeap::with_capacity(n),
            activated: 0,
            born: 0,
            mem: 0,
            dead: 0,
            resident: 0,
            scratch_epochs: Vec::new(),
            scratch_deltas: Vec::new(),
            clock: VirtualTime::ZERO,
        }
    }

    fn epoch_count(&self) -> usize {
        self.epochs.len()
    }

    fn epoch_len(&self, e: usize) -> usize {
        self.epochs[e].records.len()
    }

    fn record(&self, e: usize, i: usize) -> ObjectLife {
        self.epochs[e].records[i]
    }

    /// Applies every death at or before `now`, across epochs in global
    /// death order (order within the batch is immaterial — the moves
    /// commute — but the heap merge gives it for free).
    fn advance_clock(&mut self, now: VirtualTime) {
        if now <= self.clock {
            return;
        }
        self.clock = now;
        // Per-death work stays in the boundary epoch's own tree; the
        // epoch-level aggregate moves are accumulated (run-length merged
        // over the usually-consecutive epochs) and applied as one batch.
        self.scratch_epochs.clear();
        self.scratch_deltas.clear();
        while let Some(&Reverse((d, e))) = self.next_death.peek() {
            if d > now {
                break;
            }
            self.next_death.pop();
            let e = e as usize;
            let ep = &mut self.epochs[e];
            let (_, slot) = ep.death_order[ep.cursor];
            let size = ep.records[slot as usize].size as u64;
            ep.live.sub(slot as usize, size);
            ep.garbage.push(slot);
            ep.dead_bytes += size;
            ep.cursor += 1;
            if let Some(&(d2, _)) = ep.death_order.get(ep.cursor) {
                self.next_death.push(Reverse((d2, e as u32)));
            }
            if self.scratch_epochs.last() == Some(&(e as u32)) {
                *self.scratch_deltas.last_mut().expect("paired batch") += size;
            } else {
                self.scratch_epochs.push(e as u32);
                self.scratch_deltas.push(size);
            }
            self.dead += size;
        }
        if !self.scratch_epochs.is_empty() {
            self.epoch_live
                .sub_many(&self.scratch_epochs, &self.scratch_deltas);
            self.epoch_dead
                .add_many(&self.scratch_epochs, &self.scratch_deltas);
        }
    }

    /// `(epoch, in-epoch slot)` of the first object born strictly after
    /// `tb`, over the activated epochs. Both levels are binary searches
    /// on birth order; at query instants every activated record is
    /// inserted, so the split is the serial heap's `boundary_slot`
    /// factored through the partition.
    fn split_at(&self, tb: VirtualTime) -> (usize, usize) {
        let act = &self.epochs[..self.activated];
        let k = act.partition_point(|ep| ep.records[0].birth <= tb);
        if k == 0 {
            return (0, 0);
        }
        let e = k - 1;
        let i = act[e].records.partition_point(|r| r.birth <= tb);
        (e, i)
    }

    /// Live bytes born strictly after `tb`: the boundary epoch's tail
    /// plus the epoch-level suffix.
    fn surviving_born_after(&self, tb: VirtualTime) -> Bytes {
        if self.activated == 0 {
            return Bytes::ZERO;
        }
        let (e, i) = self.split_at(tb);
        Bytes::new(self.epochs[e].live.suffix(i) + self.epoch_live.suffix(e + 1))
    }
}

impl SimHeap for EpochHeap {
    fn with_capacity(_n: usize) -> EpochHeap {
        EpochHeap::from_epochs(Vec::new())
    }

    fn insert(&mut self, obj: SimObject) {
        if self.activated == 0 || self.born == self.epochs[self.activated - 1].records.len() {
            // First record of the next epoch: bring its partial index
            // into the aggregates.
            let e = self.activated;
            debug_assert!(e < self.epochs.len(), "insert beyond the prepared epochs");
            let ep = &self.epochs[e];
            self.epoch_live.push(ep.live.total());
            self.epoch_dead.push(0);
            if let Some(&(d, _)) = ep.death_order.first() {
                self.next_death.push(Reverse((d, e as u32)));
            }
            self.activated = e + 1;
            self.born = 0;
        }
        let rec = self.epochs[self.activated - 1].records[self.born];
        debug_assert_eq!(
            (rec.birth, rec.size, rec.death),
            (obj.birth, obj.size, obj.death),
            "drive and prepared epochs out of step"
        );
        self.born += 1;
        self.resident += 1;
        self.mem += obj.size as u64;
    }

    fn mem_in_use(&self) -> Bytes {
        Bytes::new(self.mem)
    }

    fn len(&self) -> usize {
        self.resident
    }

    fn live_bytes_at(&mut self, at: VirtualTime) -> Bytes {
        self.advance_clock(at);
        Bytes::new(self.mem - self.dead)
    }

    fn scavenge(&mut self, tb: VirtualTime, now: VirtualTime) -> ScavengeOutcome {
        self.advance_clock(now);
        debug_assert!(self.activated > 0, "scavenge before any allocation");
        let (e, i) = self.split_at(tb);
        let traced = Bytes::new(self.epochs[e].live.suffix(i) + self.epoch_live.suffix(e + 1));

        // Reclaim the threatened garbage. In the boundary epoch only the
        // slots past the split go; its garbage list is walked once (one
        // partial epoch per scavenge). Every later epoch is entirely
        // threatened, so its list is dropped wholesale.
        let mut reclaimed = 0u64;
        let mut removed = 0usize;
        {
            let ep = &mut self.epochs[e];
            let mut garbage = std::mem::take(&mut ep.garbage);
            garbage.retain(|&slot| {
                if (slot as usize) >= i {
                    reclaimed += ep.records[slot as usize].size as u64;
                    removed += 1;
                    false
                } else {
                    true
                }
            });
            ep.garbage = garbage;
            ep.dead_bytes -= reclaimed;
            self.epoch_dead.sub(e, reclaimed);
        }
        for f in (e + 1)..self.activated {
            let ep = &mut self.epochs[f];
            if ep.dead_bytes > 0 {
                reclaimed += ep.dead_bytes;
                removed += ep.garbage.len();
                self.epoch_dead.sub(f, ep.dead_bytes);
                ep.dead_bytes = 0;
                ep.garbage.clear();
            }
        }

        let tenured_garbage = Bytes::new(self.dead - reclaimed);
        self.dead -= reclaimed;
        self.mem -= reclaimed;
        self.resident -= removed;
        debug_assert_eq!(self.epoch_dead.suffix(e + 1), 0);
        ScavengeOutcome {
            traced,
            reclaimed: Bytes::new(reclaimed),
            surviving: Bytes::new(self.mem),
            tenured_garbage,
        }
    }
}

/// The survival view lent at a boundary decision; exact, like the
/// serial heap's, and inheriting the default (specification) candidate
/// scan for the inverse query — see the module docs on bit-identity.
pub(crate) struct EpochSurvival<'a> {
    heap: &'a EpochHeap,
}

impl SurvivalEstimator for EpochSurvival<'_> {
    fn surviving_born_after(&self, tb: VirtualTime) -> Bytes {
        self.heap.surviving_born_after(tb)
    }
}

impl SurvivalLender for EpochHeap {
    type Survival<'a> = EpochSurvival<'a>;

    fn survival_view(&mut self, now: VirtualTime) -> EpochSurvival<'_> {
        self.advance_clock(now);
        EpochSurvival { heap: self }
    }
}

/// A block pending preparation, claimed by exactly one worker.
struct PrepCell {
    input: Option<Vec<ObjectLife>>,
    output: Option<EpochState>,
}

/// Fans `prepare_epoch` out over `threads` workers (the calling thread
/// included). Deterministic by construction: which worker prepares which
/// epoch cannot influence the result, only the order results land.
fn prepare_all(blocks: Vec<Vec<ObjectLife>>, threads: usize) -> Vec<EpochState> {
    let n = blocks.len();
    let workers = threads.min(n).max(1);
    let cells: Vec<Mutex<PrepCell>> = blocks
        .into_iter()
        .map(|b| {
            Mutex::new(PrepCell {
                input: Some(b),
                output: None,
            })
        })
        .collect();
    let next = AtomicUsize::new(0);
    let work = || loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        let block = cells[i]
            .lock()
            .expect("prep cell poisoned")
            .input
            .take()
            .expect("each cell is claimed once");
        let prepared = prepare_epoch(block);
        cells[i].lock().expect("prep cell poisoned").output = Some(prepared);
    };
    thread::scope(|s| {
        for _ in 1..workers {
            s.spawn(work);
        }
        work();
    });
    cells
        .into_iter()
        .map(|c| {
            c.into_inner()
                .expect("prep cell poisoned")
                .output
                .expect("every cell prepared")
        })
        .collect()
}

/// Runs one cell with `threads` workers: partition, parallel prepare,
/// serial drive. Callers ([`Sim::run`](crate::engine::Sim::run)) have
/// already checked eligibility; anything ineligible that still lands
/// here falls back to the serial engine.
pub(crate) fn run_parallel<S: EventSource + ?Sized>(
    source: &mut S,
    policy: &mut dyn TbPolicy,
    config: &SimConfig,
    control: &RunControl<'_>,
    threads: usize,
) -> Result<SimRun, SimError> {
    let Trigger::Allocation(epoch_bytes) = config.trigger else {
        return run_serial::<OracleHeap, S>(source, policy, config, control.clone());
    };
    if let Err(e) = config.trigger.validate() {
        return Err(SimError::Invariant {
            at: VirtualTime::ZERO,
            violation: InvariantViolation::InvalidTrigger { factor: e.factor },
        });
    }
    let sample_every = Bytes::new((config.trigger.allocation_scale().as_u64() / 8).max(1));
    let max_events = config.budget.max_events.unwrap_or(u64::MAX);

    // Pre-read the stream into epoch blocks: scavenges fire exactly when
    // the running allocation total since the last one reaches the
    // trigger, so block boundaries are a pure function of the size
    // prefix. A mid-stream source error is recorded, not returned — the
    // drive must first replay every event before it to error with the
    // serial engine's exact clock. The event budget caps the pre-read
    // (one event past the cap reproduces the budget error), which keeps
    // budgeted runs over unbounded sources terminating.
    let mut blocks: Vec<Vec<ObjectLife>> = Vec::new();
    let mut block: Vec<ObjectLife> = Vec::new();
    let mut since = Bytes::ZERO;
    let mut read: u64 = 0;
    let mut source_err: Option<SourceError> = None;
    loop {
        if read > max_events {
            break;
        }
        if let Some(flag) = control.cancel {
            if flag.load(Ordering::Relaxed) {
                break; // the drive's per-event poll reports the cancel
            }
        }
        match source.next_record() {
            Ok(Some(life)) => {
                read += 1;
                since += Bytes::new(life.size as u64);
                block.push(life);
                if since >= epoch_bytes {
                    blocks.push(std::mem::take(&mut block));
                    since = Bytes::ZERO;
                }
            }
            Ok(None) => break,
            Err(e) => {
                source_err = Some(e);
                break;
            }
        }
    }
    if !block.is_empty() {
        blocks.push(block);
    }

    let mut heap = EpochHeap::from_epochs(prepare_all(blocks, threads));

    // The drive: the serial engine's loop verbatim, minus the resume and
    // checkpoint arms (ineligible here) and with the source reads
    // replaced by the pre-read epochs.
    let mut metrics = MetricsCollector::new(config.cost);
    let mut curve = MemoryCurve::new();
    let mut since_gc = Bytes::ZERO;
    let mut since_sample = Bytes::ZERO;
    let mut clock = VirtualTime::ZERO;
    let mut ledger = Ledger::default();

    for e in 0..heap.epoch_count() {
        for i in 0..heap.epoch_len(e) {
            if let Some(flag) = control.cancel {
                if flag.load(Ordering::Relaxed) {
                    return Err(SimError::Cancelled { at: clock });
                }
            }
            let life = heap.record(e, i);
            let (birth, obj_size, death) = (life.birth, life.size, life.death);
            ledger.events += 1;
            if ledger.events > max_events {
                return Err(SimError::BudgetExceeded {
                    kind: BudgetKind::Events,
                    limit: max_events,
                    at: clock,
                });
            }
            if let Some(prev) = ledger.prev_birth {
                if birth <= prev {
                    return Err(SimError::Invariant {
                        at: birth,
                        violation: InvariantViolation::NonMonotoneTime { prev, next: birth },
                    });
                }
            }
            if let Some(death) = death {
                if death < birth {
                    return Err(SimError::Invariant {
                        at: birth,
                        violation: InvariantViolation::DeathBeforeBirth { birth, death },
                    });
                }
            }
            ledger.prev_birth = Some(birth);

            let size = Bytes::new(obj_size as u64);
            metrics.record_memory(heap.mem_in_use(), size);
            clock = birth;
            heap.insert(SimObject {
                birth,
                size: obj_size,
                death,
            });
            ledger.allocated += size;
            since_gc += size;
            since_sample += size;

            if config.record_curve && since_sample >= sample_every {
                since_sample = Bytes::ZERO;
                curve.push(CurvePoint {
                    at: clock,
                    mem: heap.mem_in_use(),
                    live: heap.live_bytes_at(clock),
                    boundary: None,
                });
            }

            let last_surviving = metrics.history().last().map(|r| r.surviving);
            if config
                .trigger
                .should_collect(since_gc, heap.mem_in_use(), last_surviving)
            {
                since_gc = Bytes::ZERO;
                since_sample = Bytes::ZERO;
                scavenge_now(
                    &mut heap,
                    policy,
                    &mut metrics,
                    config,
                    &mut curve,
                    clock,
                    &mut ledger,
                )?;
            }
        }
    }

    if let Some(err) = source_err {
        return Err(SimError::Source {
            at: clock,
            source: err,
        });
    }

    let end = source.end();
    let tail = if end > clock {
        end.elapsed_since(clock)
    } else {
        Bytes::ZERO
    };
    metrics.record_memory(heap.mem_in_use(), tail);

    let meta = source.meta();
    Ok(SimRun {
        report: metrics.finish(policy.name(), meta.name.clone(), meta.exec_seconds),
        curve,
    })
}
