//! When-to-collect policies.
//!
//! The paper separates two orthogonal questions (Section 4): *what to
//! collect* — the threatening boundary, answered by a
//! [`TbPolicy`](dtb_core::policy::TbPolicy) — and *when to collect*,
//! which it fixes at "every 1 million bytes of allocation" and attributes
//! to Wilson & Moher's Opportunistic Collector as the complementary line
//! of work. [`Trigger`] makes the *when* pluggable so the two dimensions
//! can be studied independently (see the `trigger_ablation` bench target
//! and `repro_ablation` binary).

use dtb_core::time::Bytes;
use serde::{Deserialize, Serialize};

/// A when-to-collect policy.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Trigger {
    /// Scavenge after every `n` bytes of allocation — the paper's choice
    /// (1 MB). Collection frequency is constant per byte allocated,
    /// independent of how much memory survives.
    Allocation(Bytes),
    /// Scavenge when memory in use grows past `factor` × the storage that
    /// survived the previous scavenge (Appel-style heap-growth trigger).
    /// Programs with large live sets collect less often; churn-heavy
    /// programs collect more often.
    MemoryGrowth {
        /// Growth factor over the last surviving storage (> 1.0).
        factor: f64,
        /// Floor: never collect before this much has been allocated since
        /// the previous scavenge (avoids collect-storms at startup).
        min_allocation: Bytes,
    },
    /// Scavenge whenever memory in use reaches a fixed ceiling. The
    /// natural companion to `DTBMEM`: the ceiling is the memory budget.
    MemoryCeiling(Bytes),
}

impl Trigger {
    /// The paper's configuration: every 1 million bytes of allocation.
    pub fn paper() -> Trigger {
        Trigger::Allocation(Bytes::new(1_000_000))
    }

    /// Checks the trigger's parameters.
    ///
    /// [`Trigger::MemoryGrowth`] documents its factor as `> 1.0`: at 1.0
    /// or below the trigger fires on (almost) every allocation, and a NaN
    /// factor never fires at all. The engine validates the trigger before
    /// a run starts and reports a violation as a typed
    /// [`SimError`](crate::SimError) instead of silently simulating
    /// nonsense.
    ///
    /// # Errors
    ///
    /// Returns the offending factor when it is non-finite or `<= 1.0`.
    pub fn validate(&self) -> Result<(), InvalidTriggerFactor> {
        match *self {
            Trigger::MemoryGrowth { factor, .. } if !factor.is_finite() || factor <= 1.0 => {
                Err(InvalidTriggerFactor { factor })
            }
            _ => Ok(()),
        }
    }

    /// Decides whether to scavenge, given the allocation since the last
    /// scavenge, the current memory in use, and the storage surviving the
    /// previous scavenge (`None` before the first).
    pub fn should_collect(
        &self,
        allocated_since_gc: Bytes,
        mem_in_use: Bytes,
        last_surviving: Option<Bytes>,
    ) -> bool {
        match *self {
            Trigger::Allocation(n) => allocated_since_gc >= n,
            Trigger::MemoryGrowth {
                factor,
                min_allocation,
            } => {
                if allocated_since_gc < min_allocation {
                    return false;
                }
                let base = last_surviving.unwrap_or(Bytes::ZERO).as_u64() as f64;
                mem_in_use.as_u64() as f64 >= (base * factor).max(1.0)
            }
            Trigger::MemoryCeiling(ceiling) => mem_in_use >= ceiling,
        }
    }

    /// A characteristic allocation scale for this trigger, used to pick
    /// curve-sampling intervals. For non-allocation triggers this is the
    /// paper's 1 MB.
    pub fn allocation_scale(&self) -> Bytes {
        match *self {
            Trigger::Allocation(n) => n,
            Trigger::MemoryGrowth { min_allocation, .. } => {
                min_allocation.max(Bytes::new(1_000_000))
            }
            Trigger::MemoryCeiling(_) => Bytes::new(1_000_000),
        }
    }
}

impl Default for Trigger {
    fn default() -> Self {
        Trigger::paper()
    }
}

/// A rejected [`Trigger::MemoryGrowth`] factor (see [`Trigger::validate`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InvalidTriggerFactor {
    /// The factor that failed validation.
    pub factor: f64,
}

impl std::fmt::Display for InvalidTriggerFactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "memory-growth factor {} must be finite and > 1.0",
            self.factor
        )
    }
}

impl std::error::Error for InvalidTriggerFactor {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_trigger_fires_on_threshold() {
        let t = Trigger::Allocation(Bytes::new(1_000));
        assert!(!t.should_collect(Bytes::new(999), Bytes::new(50_000), None));
        assert!(t.should_collect(Bytes::new(1_000), Bytes::new(0), None));
    }

    #[test]
    fn growth_trigger_scales_with_survivors() {
        let t = Trigger::MemoryGrowth {
            factor: 2.0,
            min_allocation: Bytes::new(100),
        };
        // Survived 10 KB: collect at 20 KB in use.
        assert!(!t.should_collect(
            Bytes::new(500),
            Bytes::new(19_999),
            Some(Bytes::new(10_000))
        ));
        assert!(t.should_collect(
            Bytes::new(500),
            Bytes::new(20_000),
            Some(Bytes::new(10_000))
        ));
        // Below the allocation floor it never fires.
        assert!(!t.should_collect(
            Bytes::new(99),
            Bytes::new(1_000_000),
            Some(Bytes::new(10_000))
        ));
    }

    #[test]
    fn growth_trigger_before_first_scavenge_uses_floor() {
        let t = Trigger::MemoryGrowth {
            factor: 2.0,
            min_allocation: Bytes::new(100),
        };
        // No previous survivors: any memory ≥ 1 byte fires (after floor).
        assert!(t.should_collect(Bytes::new(100), Bytes::new(1), None));
    }

    #[test]
    fn ceiling_trigger_fires_at_ceiling() {
        let t = Trigger::MemoryCeiling(Bytes::from_kb(3000));
        assert!(!t.should_collect(Bytes::ZERO, Bytes::from_kb(2999), None));
        assert!(t.should_collect(Bytes::ZERO, Bytes::from_kb(3000), None));
    }

    #[test]
    fn validate_rejects_bad_growth_factors() {
        for factor in [1.0, 0.5, 0.0, -2.0, f64::NAN, f64::INFINITY] {
            let t = Trigger::MemoryGrowth {
                factor,
                min_allocation: Bytes::new(100),
            };
            let err = t.validate().unwrap_err();
            assert!(
                err.factor == factor || (factor.is_nan() && err.factor.is_nan()),
                "wrong factor reported for {factor}"
            );
        }
    }

    #[test]
    fn validate_accepts_sane_triggers() {
        assert_eq!(Trigger::paper().validate(), Ok(()));
        assert_eq!(Trigger::MemoryCeiling(Bytes::new(1)).validate(), Ok(()));
        assert_eq!(
            Trigger::MemoryGrowth {
                factor: 1.000_001,
                min_allocation: Bytes::ZERO,
            }
            .validate(),
            Ok(())
        );
    }

    #[test]
    fn allocation_scale_defaults() {
        assert_eq!(Trigger::paper().allocation_scale(), Bytes::new(1_000_000));
        assert_eq!(
            Trigger::MemoryCeiling(Bytes::new(5)).allocation_scale(),
            Bytes::new(1_000_000)
        );
    }
}
