//! The scan-based reference heap: the pre-incremental `OracleHeap`.
//!
//! [`NaiveHeap`] is the original O(heap)-per-scavenge implementation,
//! kept verbatim as an executable specification. Every operation is a
//! plain filter or scan over the object vector, so its answers are easy
//! to audit; the differential property suite
//! (`crates/sim/tests/heap_differential.rs`) replays random traces
//! through both heaps and asserts scavenge-for-scavenge identical
//! outcomes, reports, and curves. It also serves as the "pre-PR engine"
//! baseline in the `bench_dtb` perf harness.

use super::{CheckpointHeap, HeapSnapshot, ScavengeOutcome, SimHeap, SimObject};
use dtb_core::policy::{SurvivalEstimator, SurvivalLender};
use dtb_core::time::{Bytes, VirtualTime};

/// Birth-ordered heap answering every query by scanning.
#[derive(Clone, Debug, Default)]
pub struct NaiveHeap {
    objects: Vec<SimObject>,
    mem_in_use: Bytes,
}

impl NaiveHeap {
    /// Creates an empty heap.
    pub fn new() -> NaiveHeap {
        NaiveHeap::default()
    }

    /// Inserts a newly allocated object.
    pub fn insert(&mut self, obj: SimObject) {
        if let Some(last) = self.objects.last() {
            debug_assert!(
                obj.birth > last.birth,
                "births must be strictly increasing: {:?} after {:?}",
                obj.birth,
                last.birth
            );
        }
        self.mem_in_use += Bytes::new(obj.size as u64);
        self.objects.push(obj);
    }

    /// Bytes currently occupying memory (live + unreclaimed garbage).
    pub fn mem_in_use(&self) -> Bytes {
        self.mem_in_use
    }

    /// Number of objects currently in the heap.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when the heap holds no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Exact live bytes at time `at`, by full scan (O(n)).
    pub fn live_bytes_at(&self, at: VirtualTime) -> Bytes {
        self.objects
            .iter()
            .filter(|o| o.is_live_at(at))
            .map(|o| Bytes::new(o.size as u64))
            .sum()
    }

    /// Index of the first object born strictly after `tb`.
    fn boundary_index(&self, tb: VirtualTime) -> usize {
        self.objects.partition_point(|o| o.birth <= tb)
    }

    /// Performs a scavenge by partitioning the threatened tail and
    /// rescanning the immune prefix for tenured garbage (O(heap)).
    pub fn scavenge(&mut self, tb: VirtualTime, now: VirtualTime) -> ScavengeOutcome {
        let split = self.boundary_index(tb);
        let mut traced = Bytes::ZERO;
        let mut reclaimed = Bytes::ZERO;

        // Partition the threatened tail in place: survivors stay, dead are
        // dropped. Objects keep their birth order.
        let mut write = split;
        for read in split..self.objects.len() {
            let obj = self.objects[read];
            if obj.is_live_at(now) {
                traced += Bytes::new(obj.size as u64);
                self.objects[write] = obj;
                write += 1;
            } else {
                reclaimed += Bytes::new(obj.size as u64);
            }
        }
        self.objects.truncate(write);

        let tenured_garbage: Bytes = self.objects[..split]
            .iter()
            .filter(|o| !o.is_live_at(now))
            .map(|o| Bytes::new(o.size as u64))
            .sum();

        self.mem_in_use = self.mem_in_use.saturating_sub(reclaimed);
        ScavengeOutcome {
            traced,
            reclaimed,
            surviving: self.mem_in_use,
            tenured_garbage,
        }
    }

    /// Builds an owned survival snapshot at time `now`: two freshly
    /// allocated heap-sized vectors (the cost the incremental heap's
    /// borrowed snapshot eliminates).
    pub fn survival_snapshot(&self, now: VirtualTime) -> NaiveSnapshot {
        // Suffix sums of live sizes, aligned with `objects`.
        let mut suffix = vec![0u64; self.objects.len() + 1];
        for (i, o) in self.objects.iter().enumerate().rev() {
            suffix[i] = suffix[i + 1] + if o.is_live_at(now) { o.size as u64 } else { 0 };
        }
        NaiveSnapshot {
            births: self.objects.iter().map(|o| o.birth).collect(),
            live_suffix: suffix,
        }
    }

    /// Read-only view of the heap contents (tests).
    pub fn objects(&self) -> &[SimObject] {
        &self.objects
    }
}

/// An owned "live bytes born after `tb`" oracle, materialized by copying
/// the heap at one scavenge decision point.
#[derive(Clone, Debug)]
pub struct NaiveSnapshot {
    births: Vec<VirtualTime>,
    live_suffix: Vec<u64>,
}

impl SurvivalEstimator for NaiveSnapshot {
    fn surviving_born_after(&self, tb: VirtualTime) -> Bytes {
        let idx = self.births.partition_point(|b| *b <= tb);
        Bytes::new(self.live_suffix[idx])
    }
}

impl SurvivalLender for NaiveHeap {
    type Survival<'a> = NaiveSnapshot;

    fn survival_view(&mut self, now: VirtualTime) -> NaiveSnapshot {
        self.survival_snapshot(now)
    }
}

impl CheckpointHeap for NaiveHeap {
    fn snapshot(&self) -> HeapSnapshot {
        // The scan-based heap answers every query from the objects and
        // the `now` argument alone; it carries no lazy clock, so the
        // snapshot records time zero and `restore` ignores it.
        HeapSnapshot {
            objects: self.objects.clone(),
            clock: VirtualTime::ZERO,
        }
    }

    fn restore(snapshot: &HeapSnapshot) -> NaiveHeap {
        let mut heap = NaiveHeap::with_capacity(snapshot.objects.len());
        for obj in &snapshot.objects {
            NaiveHeap::insert(&mut heap, *obj);
        }
        heap
    }
}

impl SimHeap for NaiveHeap {
    fn with_capacity(n: usize) -> NaiveHeap {
        NaiveHeap {
            objects: Vec::with_capacity(n),
            mem_in_use: Bytes::ZERO,
        }
    }

    fn insert(&mut self, obj: SimObject) {
        NaiveHeap::insert(self, obj);
    }

    fn mem_in_use(&self) -> Bytes {
        NaiveHeap::mem_in_use(self)
    }

    fn len(&self) -> usize {
        NaiveHeap::len(self)
    }

    fn live_bytes_at(&mut self, at: VirtualTime) -> Bytes {
        NaiveHeap::live_bytes_at(self, at)
    }

    fn scavenge(&mut self, tb: VirtualTime, now: VirtualTime) -> ScavengeOutcome {
        NaiveHeap::scavenge(self, tb, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(birth: u64, size: u32, death: Option<u64>) -> SimObject {
        SimObject {
            birth: VirtualTime::from_bytes(birth),
            size,
            death: death.map(VirtualTime::from_bytes),
        }
    }

    fn t(v: u64) -> VirtualTime {
        VirtualTime::from_bytes(v)
    }

    #[test]
    fn boundary_protects_dead_immune_objects() {
        let mut h = NaiveHeap::new();
        h.insert(obj(10, 100, Some(15))); // dead, immune at tb=20
        h.insert(obj(20, 50, Some(25))); // dead, immune (birth == tb ⇒ immune)
        h.insert(obj(30, 25, Some(35))); // dead, threatened
        h.insert(obj(40, 10, None)); // live, threatened
        let out = h.scavenge(t(20), t(50));
        assert_eq!(out.traced, Bytes::new(10));
        assert_eq!(out.reclaimed, Bytes::new(25));
        assert_eq!(out.tenured_garbage, Bytes::new(150));
        assert_eq!(out.surviving, Bytes::new(160));
        assert_eq!(h.mem_in_use(), Bytes::new(160));
    }

    #[test]
    fn snapshot_matches_filter() {
        let mut h = NaiveHeap::new();
        for i in 0..50u64 {
            h.insert(obj(
                (i + 1) * 7,
                (i % 13 + 1) as u32,
                if i % 2 == 0 {
                    Some((i + 1) * 7 + 40)
                } else {
                    None
                },
            ));
        }
        let now = t(200);
        let snap = h.survival_snapshot(now);
        for tb in [0u64, 6, 7, 50, 111, 200, 350, 1000] {
            let naive: u64 = h
                .objects()
                .iter()
                .filter(|o| o.birth > t(tb) && o.is_live_at(now))
                .map(|o| o.size as u64)
                .sum();
            assert_eq!(
                snap.surviving_born_after(t(tb)),
                Bytes::new(naive),
                "tb={tb}"
            );
        }
    }
}
