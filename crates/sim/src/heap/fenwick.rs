//! An appendable Fenwick (binary-indexed) tree over byte totals.
//!
//! The oracle heap keys its indices by **global slot** — the position of
//! an object in birth order over the whole run, assigned at insertion and
//! never reused. Slots are append-only, so the tree supports `push`
//! (extend by one slot in O(log n)) alongside the classic point-update /
//! prefix-sum pair. All values are byte counts; a point update only ever
//! removes what was previously added at that slot, so node partial sums
//! never underflow.

/// Fenwick tree over `u64` byte totals, indexed by 0-based slot.
#[derive(Clone, Debug, Default)]
pub(crate) struct Fenwick {
    /// 1-based tree: `tree[i-1]` covers the slot range `(i - lowbit(i), i]`.
    tree: Vec<u64>,
    /// Sum of all slots, maintained eagerly for O(1) totals.
    total: u64,
}

impl Fenwick {
    /// An empty tree with room for `n` slots.
    pub fn with_capacity(n: usize) -> Fenwick {
        Fenwick {
            tree: Vec::with_capacity(n),
            total: 0,
        }
    }

    /// Appends a new slot holding `value`, in O(log n).
    ///
    /// The new node at 1-based index `i` covers `(i - lowbit(i), i]`, so
    /// its partial sum is `value` plus the sum of the already-present
    /// slots in that range.
    pub fn push(&mut self, value: u64) {
        let i = self.tree.len() + 1; // 1-based index of the new slot
        let lowbit = i & i.wrapping_neg();
        let mut node = value;
        if lowbit > 1 {
            node += self.prefix(i - 1) - self.prefix(i - lowbit);
        }
        self.tree.push(node);
        self.total += value;
    }

    /// Removes every slot, keeping the allocated capacity. The oracle
    /// heap's dead-prefix compaction rebuilds the tree from the surviving
    /// residents, so clearing must not release the buffer (the rebuild is
    /// allocation-free by construction).
    pub fn clear(&mut self) {
        self.tree.clear();
        self.total = 0;
    }

    /// Adds `delta` to the slot's value, in O(log n).
    pub fn add(&mut self, slot: usize, delta: u64) {
        let mut i = slot + 1;
        while i <= self.tree.len() {
            self.tree[i - 1] += delta;
            i += i & i.wrapping_neg();
        }
        self.total += delta;
    }

    /// Subtracts `delta` from the slot's value, in O(log n).
    ///
    /// # Panics
    ///
    /// Underflows (and panics in debug builds) if `delta` exceeds what was
    /// added at this slot — callers only ever remove bytes they recorded.
    pub fn sub(&mut self, slot: usize, delta: u64) {
        let mut i = slot + 1;
        while i <= self.tree.len() {
            self.tree[i - 1] -= delta;
            i += i & i.wrapping_neg();
        }
        self.total -= delta;
    }

    /// Sum of the first `count` slots (slots `0 .. count`), in O(log n).
    pub fn prefix(&self, count: usize) -> u64 {
        let mut i = count.min(self.tree.len());
        let mut sum = 0u64;
        while i > 0 {
            sum += self.tree[i - 1];
            i -= i & i.wrapping_neg();
        }
        sum
    }

    /// Sum of the slots from `count` onward, in O(log n).
    pub fn suffix(&self, count: usize) -> u64 {
        self.total - self.prefix(count)
    }

    /// Sum of all slots, in O(1).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The largest count `c` with `prefix(c) <= target`, in O(log n) — a
    /// single root-to-leaf descent (binary lifting), not a binary search
    /// over O(log n) prefix sums.
    ///
    /// Because values are non-negative, `prefix` is non-decreasing, so the
    /// counts satisfying the predicate form a prefix of `0..=len`. Two
    /// derived queries the heap builds on:
    ///
    /// - smallest `c` with `prefix(c) >= k` (for `k >= 1`): this is
    ///   `lower_bound(k - 1) + 1`;
    /// - the slot index of the first nonzero value at or after a split
    ///   with `prefix(split) == p`: this is `lower_bound(p)` (descending
    ///   through the zero-valued slots costs nothing).
    pub fn lower_bound(&self, target: u64) -> usize {
        let n = self.tree.len();
        let mut pos = 0usize;
        let mut rem = target;
        let mut step = n.next_power_of_two();
        while step > 0 {
            let next = pos + step;
            // `pos` is a sum of strictly larger powers of two, so
            // `lowbit(next) == step` and `tree[next - 1]` covers exactly
            // `(pos, next]`.
            if next <= n && self.tree[next - 1] <= rem {
                rem -= self.tree[next - 1];
                pos = next;
            }
            step >>= 1;
        }
        pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference model: a plain vector of slot values.
    fn model_prefix(vals: &[u64], count: usize) -> u64 {
        vals[..count.min(vals.len())].iter().sum()
    }

    #[test]
    fn push_then_prefix_matches_model() {
        let vals = [5u64, 0, 3, 12, 7, 0, 0, 9, 1, 4, 4, 2, 100];
        let mut f = Fenwick::default();
        for &v in &vals {
            f.push(v);
        }
        for count in 0..=vals.len() + 2 {
            assert_eq!(f.prefix(count), model_prefix(&vals, count), "count={count}");
            assert_eq!(
                f.suffix(count),
                f.total() - model_prefix(&vals, count),
                "count={count}"
            );
        }
    }

    #[test]
    fn add_and_sub_update_points() {
        let mut f = Fenwick::with_capacity(8);
        for _ in 0..8 {
            f.push(10);
        }
        f.add(3, 5);
        f.sub(6, 10);
        let vals = [10u64, 10, 10, 15, 10, 10, 0, 10];
        for count in 0..=8 {
            assert_eq!(f.prefix(count), model_prefix(&vals, count), "count={count}");
        }
        assert_eq!(f.total(), 75);
    }

    #[test]
    fn interleaved_push_and_update() {
        let mut f = Fenwick::default();
        let mut vals: Vec<u64> = Vec::new();
        for round in 0..50u64 {
            f.push(round * 3);
            vals.push(round * 3);
            if round % 2 == 0 {
                let slot = (round as usize) / 2;
                f.add(slot, 7);
                vals[slot] += 7;
            }
            if round % 5 == 0 && vals[round as usize] > 0 {
                f.sub(round as usize, 1);
                vals[round as usize] -= 1;
            }
            for count in [0, 1, vals.len() / 2, vals.len()] {
                assert_eq!(f.prefix(count), model_prefix(&vals, count));
            }
        }
        assert_eq!(f.total(), vals.iter().sum::<u64>());
    }

    /// Reference model for the descent: linear scan for the largest count
    /// with prefix ≤ target.
    fn model_lower_bound(vals: &[u64], target: u64) -> usize {
        (0..=vals.len())
            .rev()
            .find(|&c| model_prefix(vals, c) <= target)
            .unwrap()
    }

    #[test]
    fn lower_bound_matches_model() {
        // Zero runs, duplicates, and a large tail exercise the descent's
        // tie-breaking (largest count wins ⇒ trailing zeros are included).
        let vals = [0u64, 5, 0, 0, 3, 12, 0, 7, 0, 0, 9, 1, 4, 0, 100, 0];
        let mut f = Fenwick::default();
        for &v in &vals {
            f.push(v);
        }
        let total: u64 = vals.iter().sum();
        for target in 0..=total + 3 {
            assert_eq!(
                f.lower_bound(target),
                model_lower_bound(&vals, target),
                "target={target}"
            );
        }
    }

    #[test]
    fn lower_bound_after_updates() {
        let mut f = Fenwick::default();
        let mut vals: Vec<u64> = Vec::new();
        for i in 0..37u64 {
            f.push(i % 7);
            vals.push(i % 7);
        }
        f.sub(5, vals[5]);
        vals[5] = 0;
        f.add(20, 13);
        vals[20] += 13;
        let total: u64 = vals.iter().sum();
        for target in (0..=total + 2).step_by(3) {
            assert_eq!(f.lower_bound(target), model_lower_bound(&vals, target));
        }
    }

    #[test]
    fn lower_bound_on_empty_tree_is_zero() {
        let f = Fenwick::default();
        assert_eq!(f.lower_bound(0), 0);
        assert_eq!(f.lower_bound(u64::MAX), 0);
    }

    #[test]
    fn empty_tree_sums_to_zero() {
        let f = Fenwick::default();
        assert_eq!(f.prefix(0), 0);
        assert_eq!(f.prefix(10), 0);
        assert_eq!(f.suffix(0), 0);
        assert_eq!(f.total(), 0);
    }
}
