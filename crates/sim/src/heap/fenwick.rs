//! Re-export of the shared Fenwick kernel.
//!
//! The appendable Fenwick tree the oracle and epoch heaps index with
//! lives in `dtb_core::fenwick` (alongside the other branchless slot
//! kernels) so the microbench crate and future heap backends can reach
//! it; this module keeps the historical `crate::heap::fenwick` path for
//! the heap internals.

pub(crate) use dtb_core::fenwick::{Fenwick, PairedFenwick};
