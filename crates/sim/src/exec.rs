//! Parallel evaluation executor: the (program × policy) matrix as one job
//! pool.
//!
//! The paper's tables are embarrassingly parallel — every cell is one
//! independent `simulate` call — but the naive loop recompiles each preset
//! trace once per policy and uses one core. This module fixes both:
//!
//! * [`TraceCache`] hands out [`Arc<CompiledTrace>`] per [`Program`], so
//!   each preset is generated and compiled **exactly once per process**
//!   (it fronts the global memo behind [`Program::compiled`]).
//! * [`Evaluation`] is a builder that fans the flattened cell list over a
//!   scoped worker pool with work-stealing (a shared atomic job cursor).
//!   Results land in index-addressed slots, so the returned [`Matrix`] is
//!   **deterministic regardless of completion order** and byte-identical
//!   to a serial run.
//!
//! Cells are **fault-isolated**: a policy that returns a typed error, or
//! even panics, turns its own cell into [`CellOutcome::Failed`] while
//! every other cell completes normally. The matrix reports its failures
//! ([`Matrix::failures`]) instead of taking the process down.
//!
//! Columns need not be in-memory traces: [`Evaluation::source`] adds a
//! **streaming** column whose cells each build a fresh
//! [`EventSource`] and simulate it record-at-a-time, so sharded on-disk
//! stores and unbounded generators evaluate without ever materializing
//! the trace (see `dtb_trace::source`).
//!
//! # Example
//!
//! ```
//! use dtb_core::policy::PolicyKind;
//! use dtb_sim::exec::Evaluation;
//! use dtb_trace::programs::Program;
//!
//! let matrix = Evaluation::new()
//!     .programs([Program::Cfrac])
//!     .policies([PolicyKind::Full, PolicyKind::DtbFm])
//!     .run();
//! let full = matrix.get(Program::Cfrac, PolicyKind::Full).unwrap();
//! let dtbfm = matrix.get(Program::Cfrac, PolicyKind::DtbFm).unwrap();
//! assert!(dtbfm.total_traced <= full.total_traced);
//! ```

use crate::baseline::{live_report, live_report_source, no_gc_report, no_gc_report_source};
use crate::curve::MemoryCurve;
use crate::engine::{RunControl, Sim, SimBudget, SimConfig, SimRun};
use crate::error::SimError;
use crate::journal::{
    journal_path, read_journal, JournalCell, JournalHeader, JournalWriter, JOURNAL_VERSION,
};
use crate::metrics::SimReport;
use dtb_core::policy::{PolicyConfig, PolicyKind, Row, TbPolicy};
use dtb_core::time::VirtualTime;
use dtb_trace::ckp::{checksum, CkpError};
use dtb_trace::ctc::CtcError;
use dtb_trace::event::CompiledTrace;
use dtb_trace::programs::Program;
use dtb_trace::{EventSource, SourceError};
use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Shared, cheaply-cloneable access to compiled traces.
///
/// Preset lookups delegate to the process-wide memo behind
/// [`Program::compiled`], so two caches (or two evaluations) still share
/// one compiled trace per preset: `cache.preset(p)` is pointer-equal to
/// any other handle to the same program. Custom traces registered with
/// [`TraceCache::insert`] are scoped to this cache instance.
#[derive(Clone, Debug, Default)]
pub struct TraceCache {
    custom: Arc<Mutex<HashMap<String, Arc<CompiledTrace>>>>,
}

impl TraceCache {
    /// Creates an empty cache.
    pub fn new() -> TraceCache {
        TraceCache::default()
    }

    /// The compiled trace of a preset workload. Generated and compiled at
    /// most once per process; every call returns the same [`Arc`].
    pub fn preset(&self, program: Program) -> Arc<CompiledTrace> {
        program.compiled()
    }

    /// Registers a custom trace under its metadata name and returns the
    /// shared handle. Re-inserting a name replaces the previous trace.
    pub fn insert(&self, trace: CompiledTrace) -> Arc<CompiledTrace> {
        let arc = Arc::new(trace);
        self.custom
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .insert(arc.meta.name.clone(), arc.clone());
        arc
    }

    /// Looks up a previously [inserted](TraceCache::insert) custom trace.
    pub fn get(&self, name: &str) -> Option<Arc<CompiledTrace>> {
        self.custom
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(name)
            .cloned()
    }
}

/// A policy factory: builds a fresh policy instance inside a worker.
///
/// Boxed policies are stateful and not `Send`, so the pool ships factories
/// to workers and instantiates per cell.
type PolicyFactory = Arc<dyn Fn(&PolicyConfig) -> Box<dyn TbPolicy> + Send + Sync>;

/// One row of the evaluation: what to run for each trace.
#[derive(Clone)]
enum RowSpec {
    Kind(PolicyKind),
    NoGc,
    Live,
    Custom { row: Row, build: PolicyFactory },
}

impl RowSpec {
    fn row(&self) -> Row {
        match self {
            RowSpec::Kind(kind) => Row::Policy(*kind),
            RowSpec::NoGc => Row::NoGc,
            RowSpec::Live => Row::Live,
            RowSpec::Custom { row, .. } => row.clone(),
        }
    }
}

/// A streaming-source factory: builds a fresh [`EventSource`] inside a
/// worker, once per cell. Each cell needs its own cursor (a source is
/// consumed by reading), so columns ship factories, not sources.
pub type SourceFactory = Arc<dyn Fn() -> Box<dyn EventSource + Send> + Send + Sync>;

/// One column target: a preset program, an ad-hoc trace, or a streaming
/// source.
#[derive(Clone)]
enum Target {
    Preset(Program),
    Trace(Arc<CompiledTrace>),
    Stream { name: String, make: SourceFactory },
}

impl Target {
    fn program(&self) -> Option<Program> {
        match self {
            Target::Preset(p) => Some(*p),
            Target::Trace(_) | Target::Stream { .. } => None,
        }
    }
}

/// Progress information delivered to [`Evaluation::on_cell`] as each cell
/// completes. Callbacks observe *completion* order, which under parallel
/// execution is nondeterministic; the [`Matrix`] itself is not.
#[derive(Clone, Debug)]
pub struct CellEvent<'a> {
    /// Workload name of the completed cell's column.
    pub program: &'a str,
    /// Row of the completed cell.
    pub row: &'a Row,
    /// Wall-clock time this one cell took.
    pub elapsed: Duration,
    /// Whether the cell failed (typed error or contained panic).
    pub failed: bool,
    /// Cells completed so far, including this one.
    pub completed: usize,
    /// Total cells in the evaluation.
    pub total: usize,
}

type CellCallback = Arc<dyn Fn(&CellEvent<'_>) + Send + Sync>;

/// How the executor retries cells that fail *transiently* (a missed
/// deadline or a shard-store I/O error — see
/// [`FailureCause::is_transient`]).
///
/// Delays grow exponentially from [`base_delay`](RetryPolicy::base_delay)
/// and are capped at [`max_delay`](RetryPolicy::max_delay), with
/// **deterministic jitter**: the wait for a given (cell, attempt) pair is
/// a pure FNV hash of the two, so reruns sleep the same schedule and
/// tests stay reproducible, while different cells still desynchronize.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Extra attempts after the first (0 = never retry).
    pub max_retries: u32,
    /// Delay before the first retry; doubles each further retry.
    pub base_delay: Duration,
    /// Upper bound on any one delay.
    pub max_delay: Duration,
}

impl RetryPolicy {
    /// Never retry: every failure is final on the first attempt.
    pub const NONE: RetryPolicy = RetryPolicy {
        max_retries: 0,
        base_delay: Duration::ZERO,
        max_delay: Duration::ZERO,
    };

    /// `n` retries with the default backoff (25 ms base, 2 s cap).
    pub fn retries(n: u32) -> RetryPolicy {
        RetryPolicy {
            max_retries: n,
            base_delay: Duration::from_millis(25),
            max_delay: Duration::from_secs(2),
        }
    }

    /// The wait before retry number `attempt` (0-based) of the cell
    /// salted `salt`: exponential backoff with deterministic jitter in
    /// the upper half of the capped window.
    pub fn delay(&self, salt: u64, attempt: u32) -> Duration {
        let base = self.base_delay.as_nanos().min(u64::MAX as u128) as u64;
        if base == 0 {
            return Duration::ZERO;
        }
        let max = self.max_delay.as_nanos().min(u64::MAX as u128) as u64;
        let exp = base.saturating_mul(1u64 << attempt.min(63));
        let capped = exp.min(max).max(1);
        let mut seed = [0u8; 12];
        seed[..8].copy_from_slice(&salt.to_le_bytes());
        seed[8..].copy_from_slice(&attempt.to_le_bytes());
        let jitter = checksum(&seed);
        let half = capped / 2;
        Duration::from_nanos(half + jitter % (capped - half + 1))
    }
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy::NONE
    }
}

/// A one-shot wall-clock alarm: arms on construction, and if not
/// disarmed (dropped) within `limit`, stores `true` into the shared
/// cancel flag that the engine polls between events.
///
/// Dropping the watchdog hangs up the channel, which wakes the timer
/// thread immediately — a finished cell never waits out its deadline —
/// and joins it, so no timer thread outlives its cell.
struct Watchdog {
    disarm: Option<mpsc::Sender<()>>,
    thread: Option<thread::JoinHandle<()>>,
}

impl Watchdog {
    fn arm(limit: Duration, cancel: Arc<AtomicBool>) -> Watchdog {
        let (disarm, expired) = mpsc::channel::<()>();
        let thread = thread::spawn(move || {
            // Timeout = the deadline passed; Disconnected = the cell
            // finished and the watchdog was dropped.
            if let Err(mpsc::RecvTimeoutError::Timeout) = expired.recv_timeout(limit) {
                cancel.store(true, Ordering::Relaxed);
            }
        });
        Watchdog {
            disarm: Some(disarm),
            thread: Some(thread),
        }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        drop(self.disarm.take());
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Why one cell failed while the rest of the matrix completed.
#[derive(Clone, Debug, PartialEq)]
pub enum FailureCause {
    /// The simulation returned a typed error.
    Sim(SimError),
    /// The cell's policy (or a custom factory) panicked; the panic was
    /// caught at the cell boundary and stringified.
    Panic(String),
    /// The cell overran its wall-clock deadline
    /// ([`Evaluation::cell_deadline`]) and was cancelled by the
    /// watchdog.
    Deadline {
        /// The configured per-cell limit.
        limit: Duration,
        /// Allocation clock when the cancellation was observed.
        at: VirtualTime,
    },
    /// The cell was evaluated by the distributed service and quarantined
    /// there; the string is the coordinator's recorded cause. The
    /// quarantine is final — the service spent its own retries before
    /// quarantining — but `transient` preserves the *class* of the
    /// underlying failure, so remote and local failures render with the
    /// same transient/permanent classification.
    Remote {
        /// The coordinator's recorded cause.
        cause: String,
        /// Whether the underlying failure was transient (the service
        /// exhausted its retries on it).
        transient: bool,
    },
}

impl FailureCause {
    /// True for failures worth retrying: a missed deadline (the machine
    /// may have been momentarily overloaded) or a shard-store I/O error
    /// (the file may reappear — network mounts do that). Policy errors,
    /// invariant violations, corruption, and panics are deterministic
    /// and permanent: retrying would fail identically.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            FailureCause::Deadline { .. }
                | FailureCause::Sim(SimError::Source {
                    source: SourceError::Shard(CtcError::Io { .. }),
                    ..
                })
                | FailureCause::Remote {
                    transient: true,
                    ..
                }
        )
    }
}

impl fmt::Display for FailureCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureCause::Sim(e) => write!(f, "{e}"),
            FailureCause::Panic(msg) => write!(f, "panicked: {msg}"),
            FailureCause::Deadline { limit, at } => {
                write!(f, "deadline of {limit:?} exceeded at clock {}", at.as_u64())
            }
            FailureCause::Remote { cause, .. } => write!(f, "remote: {cause}"),
        }
    }
}

/// One failed matrix cell, with enough context to name it in a report.
#[derive(Clone, Debug, PartialEq)]
pub struct CellFailure {
    /// Workload name of the failed cell's column.
    pub program: String,
    /// Row of the failed cell.
    pub row: Row,
    /// What went wrong.
    pub cause: FailureCause,
}

impl CellFailure {
    /// True when the failure is worth retrying
    /// ([`FailureCause::is_transient`]).
    pub fn is_transient(&self) -> bool {
        self.cause.is_transient()
    }

    /// Renders the failure for a human report: cell, cause,
    /// transient/permanent class, and attempts consumed.
    ///
    /// This is the **one** formatter for failed cells — local runs and
    /// `--submit` runs served by the distributed service both go
    /// through it, so the two paths render identically (a served
    /// failure differs only by its `remote:` provenance prefix). The
    /// class tells the reader what a rerun would do: transient causes
    /// retry (these exhausted the retry budget), permanent and remote
    /// causes fail identically every time.
    pub fn render(&self, attempts: u32) -> String {
        let class = if self.is_transient() {
            "transient, retries exhausted"
        } else {
            "permanent"
        };
        format!(
            "{} × {}: {} [{class}; {attempts} attempt(s)]",
            self.program, self.row, self.cause
        )
    }
}

impl fmt::Display for CellFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} × {}: {}", self.program, self.row, self.cause)
    }
}

/// The outcome of one matrix cell: a completed simulation or an isolated
/// failure.
#[derive(Clone, Debug)]
pub enum CellOutcome {
    /// The simulation finished and produced a report.
    Completed(SimRun),
    /// The simulation failed; the failure was contained to this cell.
    Failed(CellFailure),
}

/// One matrix cell: a row's simulation over one column's trace.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Which table row this cell belongs to.
    pub row: Row,
    /// The simulation outcome (completed run or isolated failure).
    pub outcome: CellOutcome,
    /// Wall-clock time this cell took inside its worker (all attempts
    /// and backoff waits included; for a cell reused from a resumed
    /// journal, the time the *original* run recorded).
    pub elapsed: Duration,
    /// How many attempts the cell took: 1 on first-try success, more
    /// when transient failures were retried
    /// ([`Evaluation::retry`]).
    pub attempts: u32,
}

impl Cell {
    /// The simulation output, when the cell completed.
    pub fn run(&self) -> Option<&SimRun> {
        match &self.outcome {
            CellOutcome::Completed(run) => Some(run),
            CellOutcome::Failed(_) => None,
        }
    }

    /// The cell's table metrics, when the cell completed.
    pub fn report(&self) -> Option<&SimReport> {
        self.run().map(|r| &r.report)
    }

    /// The failure, when the cell did not complete.
    pub fn failure(&self) -> Option<&CellFailure> {
        match &self.outcome {
            CellOutcome::Completed(_) => None,
            CellOutcome::Failed(f) => Some(f),
        }
    }

    /// True when the cell failed.
    pub fn is_failed(&self) -> bool {
        self.failure().is_some()
    }
}

/// Builder for a (program × policy) evaluation run.
///
/// Defaults reproduce the paper's full matrix: every preset in
/// [`Program::ALL`], all six collectors of [`PolicyKind::ALL`], plus the
/// `No GC` / `LIVE` baseline rows, under the paper's Section 5
/// configuration, on all available cores.
pub struct Evaluation {
    cache: TraceCache,
    targets: Option<Vec<Target>>,
    policies: Vec<PolicyKind>,
    customs: Vec<(Row, PolicyFactory)>,
    baselines: bool,
    policy_cfg: PolicyConfig,
    sim_cfg: SimConfig,
    parallelism: usize,
    intra_threads: usize,
    on_cell: Option<CellCallback>,
    deadline: Option<Duration>,
    retry: RetryPolicy,
    journal_dir: Option<PathBuf>,
    resume: bool,
}

impl Default for Evaluation {
    fn default() -> Self {
        Evaluation::new()
    }
}

impl Evaluation {
    /// An evaluation of the paper's full matrix (see the type docs).
    pub fn new() -> Evaluation {
        Evaluation {
            cache: TraceCache::new(),
            targets: None,
            policies: PolicyKind::ALL.to_vec(),
            customs: Vec::new(),
            baselines: true,
            policy_cfg: PolicyConfig::paper(),
            sim_cfg: SimConfig::paper(),
            parallelism: 0,
            intra_threads: 1,
            on_cell: None,
            deadline: None,
            retry: RetryPolicy::NONE,
            journal_dir: None,
            resume: false,
        }
    }

    /// Restricts the columns to these preset workloads (replacing any
    /// previously selected targets).
    pub fn programs(mut self, programs: impl IntoIterator<Item = Program>) -> Evaluation {
        self.targets = Some(programs.into_iter().map(Target::Preset).collect());
        self
    }

    /// Adds an ad-hoc compiled trace as a column (keeps existing columns;
    /// call after [`programs`](Evaluation::programs) to mix presets and
    /// custom traces).
    pub fn trace(mut self, trace: Arc<CompiledTrace>) -> Evaluation {
        self.targets
            .get_or_insert_with(Vec::new)
            .push(Target::Trace(trace));
        self
    }

    /// Adds a streaming column: every cell in it builds a fresh
    /// [`EventSource`] from `make` and simulates it record-at-a-time
    /// ([`simulate_source`]), so the column's trace is never materialized
    /// in memory — sharded on-disk stores ([`dtb_trace::ShardReader`])
    /// and unbounded generators ([`dtb_trace::SynthSource`]) both fit.
    /// Baseline rows stream too
    /// ([`TraceStats::compute_source`](dtb_trace::stats::TraceStats::compute_source)).
    ///
    /// `name` labels the column ([`Column::name`]); reports carry the
    /// source's own metadata name, exactly as an in-memory run would.
    pub fn source(
        mut self,
        name: impl Into<String>,
        make: impl Fn() -> Box<dyn EventSource + Send> + Send + Sync + 'static,
    ) -> Evaluation {
        self.targets
            .get_or_insert_with(Vec::new)
            .push(Target::Stream {
                name: name.into(),
                make: Arc::new(make),
            });
        self
    }

    /// Restricts the collector rows to these kinds, in this order
    /// (replacing the default six). Baselines are controlled separately by
    /// [`baselines`](Evaluation::baselines).
    pub fn policies(mut self, kinds: impl IntoIterator<Item = PolicyKind>) -> Evaluation {
        self.policies = kinds.into_iter().collect();
        self
    }

    /// Adds a row for a policy outside the paper's six. The factory runs
    /// inside worker threads, once per column.
    pub fn custom_policy(
        mut self,
        name: impl Into<String>,
        build: impl Fn(&PolicyConfig) -> Box<dyn TbPolicy> + Send + Sync + 'static,
    ) -> Evaluation {
        self.customs
            .push((Row::Custom(name.into()), Arc::new(build)));
        self
    }

    /// Whether to append the `No GC` / `LIVE` baseline rows (default
    /// `true`).
    pub fn baselines(mut self, include: bool) -> Evaluation {
        self.baselines = include;
        self
    }

    /// The constraint configuration handed to every policy factory.
    pub fn policy_config(mut self, cfg: PolicyConfig) -> Evaluation {
        self.policy_cfg = cfg;
        self
    }

    /// The simulation parameters (trigger, cost model, curve recording).
    pub fn sim_config(mut self, cfg: SimConfig) -> Evaluation {
        self.sim_cfg = cfg;
        self
    }

    /// Caps every cell's work (events / scavenges): a cell that exceeds
    /// the budget fails with a typed
    /// [`BudgetExceeded`](SimError::BudgetExceeded) instead of hanging
    /// the evaluation.
    pub fn cell_budget(mut self, budget: SimBudget) -> Evaluation {
        self.sim_cfg.budget = budget;
        self
    }

    /// Worker-thread count. `0` (the default) means one worker per
    /// available core; `1` forces a serial run — which produces the same
    /// [`Matrix`] as any other setting, only slower.
    pub fn parallelism(mut self, workers: usize) -> Evaluation {
        self.parallelism = workers;
        self
    }

    /// Thread count *inside* each cell: eligible cells (allocation
    /// trigger, default heap) run under the deterministic per-epoch
    /// parallel engine ([`crate::par`]) with `n` threads, which is
    /// bit-identical to a serial run for every policy. `0` means one
    /// thread per available core; the default is `1` (serial cells).
    ///
    /// Composes with [`parallelism`](Evaluation::parallelism): that one
    /// fans *cells* out across workers, this one forks *within* a cell —
    /// the right knob when the matrix has fewer cells than the machine
    /// has cores.
    pub fn intra_cell_threads(mut self, n: usize) -> Evaluation {
        self.intra_threads = n;
        self
    }

    /// Wall-clock deadline per cell: a cell still running after `limit`
    /// is cancelled by a watchdog thread (the engine polls a cancel flag
    /// between events) and reported as [`FailureCause::Deadline`] —
    /// retried if a [`retry`](Evaluation::retry) policy allows,
    /// quarantined as a failed cell otherwise, while every other cell
    /// completes normally. Baseline rows (`No GC` / `LIVE`) are not
    /// deadline-checked: they run no engine loop to poll the flag.
    pub fn cell_deadline(mut self, limit: Duration) -> Evaluation {
        self.deadline = Some(limit);
        self
    }

    /// How transient cell failures are retried (default:
    /// [`RetryPolicy::NONE`]). Only failures
    /// [`is_transient`](FailureCause::is_transient) reports retryable
    /// are retried; deterministic failures fail on the first attempt no
    /// matter the policy.
    pub fn retry(mut self, policy: RetryPolicy) -> Evaluation {
        self.retry = policy;
        self
    }

    /// Writes a durable journal to `dir/run.journal`: one fsync'd,
    /// checksummed line per completed cell (see [`crate::journal`]).
    /// Replaces any journal already in `dir`; use
    /// [`resume`](Evaluation::resume) to continue one instead.
    pub fn journal(mut self, dir: impl Into<PathBuf>) -> Evaluation {
        self.journal_dir = Some(dir.into());
        self.resume = false;
        self
    }

    /// Resumes from the journal in `dir`: cells the journal records as
    /// completed are reused verbatim (their [`SimRun`]s come from the
    /// journal, bit-identical to the original computation), failed cells
    /// are recomputed, and new outcomes append to the same journal. A
    /// missing journal simply starts fresh, so crash-in-a-loop scripts
    /// can pass the same directory unconditionally. The journal's header
    /// must match this evaluation's shape and configuration; a mismatch
    /// is a typed [`CkpError::Mismatch`] from
    /// [`try_run`](Evaluation::try_run).
    pub fn resume(mut self, dir: impl Into<PathBuf>) -> Evaluation {
        self.journal_dir = Some(dir.into());
        self.resume = true;
        self
    }

    /// Installs a progress callback invoked after every completed cell
    /// (from worker threads, in completion order). A callback that panics
    /// is contained: the panic is swallowed at the cell boundary.
    pub fn on_cell(mut self, f: impl Fn(&CellEvent<'_>) + Send + Sync + 'static) -> Evaluation {
        self.on_cell = Some(Arc::new(f));
        self
    }

    /// Runs every cell and assembles the matrix.
    ///
    /// Each preset trace is compiled at most once per process (shared
    /// through the [`TraceCache`]); cells fan out over a scoped worker
    /// pool; results return in (column, row) table order no matter which
    /// worker finished first.
    ///
    /// Failures never escape their cell: a policy error, watchdog trip,
    /// missed deadline, invariant violation, or panic becomes that
    /// cell's [`CellOutcome::Failed`] and every other cell still
    /// completes. An evaluation with no columns or no rows returns an
    /// empty matrix.
    ///
    /// # Panics
    ///
    /// Only when a [`journal`](Evaluation::journal) /
    /// [`resume`](Evaluation::resume) directory was configured and the
    /// journal itself fails (I/O, corruption, header mismatch) — use
    /// [`try_run`](Evaluation::try_run) to handle those as values. An
    /// evaluation without a journal cannot panic here.
    pub fn run(self) -> Matrix {
        self.try_run()
            .expect("evaluation journal failed; use try_run() to handle journal errors")
    }

    /// [`run`](Evaluation::run), with journal failures as typed errors.
    ///
    /// # Errors
    ///
    /// [`CkpError`] when the configured journal cannot be created,
    /// written, or (on resume) read back — including
    /// [`CkpError::Mismatch`] when the journal on disk belongs to a
    /// differently-shaped or differently-configured evaluation.
    pub fn try_run(self) -> Result<Matrix, CkpError> {
        let targets: Vec<Target> = match self.targets {
            Some(t) => t,
            None => Program::ALL.iter().copied().map(Target::Preset).collect(),
        };

        let mut rows: Vec<RowSpec> = self.policies.iter().copied().map(RowSpec::Kind).collect();
        rows.extend(
            self.customs
                .into_iter()
                .map(|(row, build)| RowSpec::Custom { row, build }),
        );
        if self.baselines {
            rows.push(RowSpec::NoGc);
            rows.push(RowSpec::Live);
        }
        if targets.is_empty() || rows.is_empty() {
            return Ok(Matrix {
                columns: Vec::new(),
            });
        }

        // Resolve every column's trace up front (cheap: presets are memoized
        // process-wide) so workers share, never compile. Streaming columns
        // stay unresolved — that is the point.
        let traces: Vec<Option<Arc<CompiledTrace>>> = targets
            .iter()
            .map(|t| match t {
                Target::Preset(p) => Some(self.cache.preset(*p)),
                Target::Trace(arc) => Some(arc.clone()),
                Target::Stream { .. } => None,
            })
            .collect();
        let names: Vec<String> = targets
            .iter()
            .zip(&traces)
            .map(|(t, trace)| match t {
                Target::Stream { name, .. } => name.clone(),
                _ => trace.as_ref().expect("resolved above").meta.name.clone(),
            })
            .collect();
        let row_labels: Vec<String> = rows.iter().map(|spec| spec.row().to_string()).collect();

        // Journal / resume setup: cells the journal already records as
        // completed are reused verbatim and never re-run.
        let mut reused: HashMap<(usize, usize), (SimRun, Duration, u32)> = HashMap::new();
        let writer: Option<Mutex<JournalWriter>> = match &self.journal_dir {
            None => None,
            Some(dir) => {
                let header = JournalHeader {
                    version: JOURNAL_VERSION,
                    columns: names.clone(),
                    rows: row_labels.clone(),
                    policy: self.policy_cfg,
                    sim: self.sim_cfg,
                };
                // A resume against a missing or zero-byte journal is a
                // fresh start, not an error: the common case is "first
                // run with --resume in the launch script" (or a crash
                // before the header line landed), and refusing it would
                // make resume-by-default unusable. Interior corruption —
                // a non-empty journal that does not parse — still errors:
                // that journal *had* results and silently discarding them
                // would be data loss.
                let journal_file = journal_path(dir);
                let journal_empty = match std::fs::metadata(&journal_file) {
                    Ok(meta) => meta.len() == 0,
                    Err(_) => true,
                };
                let existing = if self.resume && !journal_empty {
                    Some(read_journal(dir)?)
                } else {
                    if self.resume {
                        eprintln!(
                            "evaluation: nothing to resume at {} (missing or empty journal); \
                             starting a fresh run",
                            journal_file.display()
                        );
                    }
                    None
                };
                match existing {
                    Some(journal) => {
                        check_journal_compat(&journal.header, &header)?;
                        for (c, column) in names.iter().enumerate() {
                            for (r, row) in row_labels.iter().enumerate() {
                                if let Some(cell) = journal.cell(column, row) {
                                    if let Some(run) = &cell.run {
                                        reused.insert(
                                            (c, r),
                                            (
                                                run.clone(),
                                                Duration::from_nanos(cell.elapsed_ns),
                                                cell.attempts,
                                            ),
                                        );
                                    }
                                }
                            }
                        }
                        Some(Mutex::new(JournalWriter::resume(dir, &journal)?))
                    }
                    None => Some(Mutex::new(JournalWriter::create(dir, &header)?)),
                }
            }
        };

        // Flatten the matrix into jobs addressed by (column, row) index,
        // skipping cells reused from the journal.
        let jobs: Vec<(usize, usize)> = (0..targets.len())
            .flat_map(|c| (0..rows.len()).map(move |r| (c, r)))
            .filter(|key| !reused.contains_key(key))
            .collect();
        let total = jobs.len();
        dtb_obs::emit(|| dtb_obs::Event::EvalStarted {
            cells: total as u64,
        });
        // Progress callbacks fire from workers in completion order; a
        // dedicated counter keeps `completed` accurate even when the
        // finishing order is scrambled.
        let completed = AtomicUsize::new(0);
        // The first journal-write failure, surfaced after the pool drains
        // (cells keep computing; only durability is lost).
        let journal_err: Mutex<Option<CkpError>> = Mutex::new(None);
        let results = run_indexed(self.parallelism, total, |job| {
            let (c, r) = jobs[job];
            let started = Instant::now();
            let (outcome, attempts) = run_cell_supervised(
                &targets[c],
                traces[c].as_deref(),
                &names[c],
                &rows[r],
                &self.policy_cfg,
                &self.sim_cfg,
                self.intra_threads,
                self.deadline,
                &self.retry,
                (c * rows.len() + r) as u64,
            );
            let elapsed = started.elapsed();
            if let Some(writer) = &writer {
                let line = JournalCell {
                    column: names[c].clone(),
                    row: row_labels[r].clone(),
                    attempts,
                    elapsed_ns: elapsed.as_nanos().min(u64::MAX as u128) as u64,
                    run: match &outcome {
                        CellOutcome::Completed(run) => Some(run.clone()),
                        CellOutcome::Failed(_) => None,
                    },
                    failure: match &outcome {
                        CellOutcome::Completed(_) => None,
                        CellOutcome::Failed(f) => Some(f.to_string()),
                    },
                };
                let result = writer.lock().unwrap_or_else(|p| p.into_inner()).cell(&line);
                if let Err(e) = result {
                    journal_err
                        .lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .get_or_insert(e);
                }
            }
            let done = completed.fetch_add(1, Ordering::Relaxed) + 1;
            // The bus carries the canonical lifecycle record; the
            // `on_cell` callback below is a thin compatibility adapter
            // over the same moment (same counter, same ordering).
            dtb_obs::emit(|| dtb_obs::Event::CellFinished {
                column: names[c].clone(),
                row: row_labels[r].clone(),
                attempts,
                elapsed_ns: elapsed.as_nanos().min(u64::MAX as u128) as u64,
                completed: done as u64,
                total: total as u64,
                outcome: match &outcome {
                    CellOutcome::Completed(_) => dtb_obs::CellOutcome::Completed,
                    CellOutcome::Failed(_) => dtb_obs::CellOutcome::Failed,
                },
                cause: match &outcome {
                    CellOutcome::Completed(_) => String::new(),
                    CellOutcome::Failed(f) => f.cause.to_string(),
                },
            });
            if let Some(cb) = &self.on_cell {
                let event = CellEvent {
                    program: &names[c],
                    row: &rows[r].row(),
                    elapsed,
                    failed: matches!(outcome, CellOutcome::Failed(_)),
                    completed: done,
                    total,
                };
                // A panicking observer must not take the cell down with it.
                let _ = catch_unwind(AssertUnwindSafe(|| cb(&event)));
            }
            (outcome, elapsed, attempts)
        });
        if let Some(e) = journal_err.into_inner().unwrap_or_else(|p| p.into_inner()) {
            return Err(e);
        }

        // Merge computed and journal-reused cells back into column-major
        // table order.
        let mut computed: HashMap<(usize, usize), (CellOutcome, Duration, u32)> =
            jobs.into_iter().zip(results).collect();
        let cell_count = targets.len() * rows.len();
        let mut all = Vec::with_capacity(cell_count);
        for c in 0..targets.len() {
            for r in 0..rows.len() {
                let entry = match reused.remove(&(c, r)) {
                    Some((run, elapsed, attempts)) => {
                        (CellOutcome::Completed(run), elapsed, attempts)
                    }
                    None => computed
                        .remove(&(c, r))
                        .expect("every cell is computed or reused"),
                };
                all.push(entry);
            }
        }

        let matrix = assemble(targets, traces, names, &rows, all);
        debug_assert_eq!(matrix.cells().count(), cell_count);
        Ok(matrix)
    }
}

/// Refuses to resume a journal written by a differently-shaped or
/// differently-configured evaluation.
fn check_journal_compat(found: &JournalHeader, expected: &JournalHeader) -> Result<(), CkpError> {
    fn field(what: &'static str, expected: String, found: String) -> Result<(), CkpError> {
        if expected == found {
            Ok(())
        } else {
            Err(CkpError::Mismatch {
                what,
                expected,
                found,
            })
        }
    }
    field(
        "journal version",
        expected.version.to_string(),
        found.version.to_string(),
    )?;
    field(
        "journal columns",
        format!("{:?}", expected.columns),
        format!("{:?}", found.columns),
    )?;
    field(
        "journal rows",
        format!("{:?}", expected.rows),
        format!("{:?}", found.rows),
    )?;
    field(
        "policy config",
        format!("{:?}", expected.policy),
        format!("{:?}", found.policy),
    )?;
    field(
        "sim config",
        format!("{:?}", expected.sim),
        format!("{:?}", found.sim),
    )
}

/// Runs one cell under supervision: an optional deadline watchdog and
/// bounded retry of transient failures. Returns the final outcome and
/// the number of attempts made.
#[allow(clippy::too_many_arguments)]
fn run_cell_supervised(
    target: &Target,
    trace: Option<&CompiledTrace>,
    name: &str,
    spec: &RowSpec,
    policy_cfg: &PolicyConfig,
    sim_cfg: &SimConfig,
    intra_threads: usize,
    deadline: Option<Duration>,
    retry: &RetryPolicy,
    salt: u64,
) -> (CellOutcome, u32) {
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        dtb_obs::emit(|| dtb_obs::Event::CellStarted {
            column: name.to_string(),
            row: spec.row().to_string(),
            attempt: attempts,
        });
        let cancel = Arc::new(AtomicBool::new(false));
        let outcome = {
            let _watchdog = deadline.map(|limit| Watchdog::arm(limit, Arc::clone(&cancel)));
            run_cell(
                target,
                trace,
                name,
                spec,
                policy_cfg,
                sim_cfg,
                intra_threads,
                deadline.map(|_| &*cancel),
            )
            // Watchdog drops here: the timer thread wakes and joins
            // before the next attempt re-arms.
        };
        // The watchdog is this flag's only writer, so a cancelled run is
        // by construction a missed deadline.
        let outcome = match (outcome, deadline) {
            (
                CellOutcome::Failed(CellFailure {
                    program,
                    row,
                    cause: FailureCause::Sim(SimError::Cancelled { at }),
                }),
                Some(limit),
            ) => CellOutcome::Failed(CellFailure {
                program,
                row,
                cause: FailureCause::Deadline { limit, at },
            }),
            (outcome, _) => outcome,
        };
        match &outcome {
            CellOutcome::Failed(f) if f.is_transient() && attempts <= retry.max_retries => {
                let delay = retry.delay(salt, attempts - 1);
                dtb_obs::emit(|| dtb_obs::Event::CellRetried {
                    column: name.to_string(),
                    row: spec.row().to_string(),
                    attempt: attempts,
                    delay_ns: delay.as_nanos().min(u64::MAX as u128) as u64,
                    cause: f.cause.to_string(),
                });
                thread::sleep(delay);
            }
            _ => return (outcome, attempts),
        }
    }
}

/// Runs one cell with full fault isolation: typed simulation errors and
/// panics (from the policy, a custom factory, the engine, or a streaming
/// source) both land in [`CellOutcome::Failed`]. When `cancel` is set,
/// policy rows run under a [`RunControl`] that polls it between events
/// (the deadline watchdog's hook).
#[allow(clippy::too_many_arguments)]
fn run_cell(
    target: &Target,
    trace: Option<&CompiledTrace>,
    name: &str,
    spec: &RowSpec,
    policy_cfg: &PolicyConfig,
    sim_cfg: &SimConfig,
    intra_threads: usize,
    cancel: Option<&AtomicBool>,
) -> CellOutcome {
    let threads = if intra_threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        intra_threads
    };
    // RunControl::new() with no cancel flag is exactly the plain
    // `simulate` / `simulate_source` path, so uncancellable runs stay
    // bit-identical to the pre-supervision executor.
    let sim = || match cancel {
        Some(flag) => Sim::new(*sim_cfg)
            .control(RunControl::new().with_cancel(flag))
            .threads(threads),
        None => Sim::new(*sim_cfg).threads(threads),
    };
    let attempt = catch_unwind(AssertUnwindSafe(|| match target {
        Target::Stream { make, .. } => {
            // Each cell consumes its own cursor: sources are stateful.
            let mut source = make();
            let source = &mut *source;
            // Stats failures carry no allocation clock; report them at
            // zero rather than inventing one.
            let at_start = |source| SimError::Source {
                at: VirtualTime::ZERO,
                source,
            };
            match spec {
                RowSpec::Kind(kind) => {
                    let mut policy = kind.build(policy_cfg);
                    sim().run(source, &mut policy)
                }
                RowSpec::Custom { row, build } => {
                    let mut policy = build(policy_cfg);
                    sim().run(source, &mut policy).map(|mut run| {
                        run.report.policy = row.clone();
                        run
                    })
                }
                RowSpec::NoGc => no_gc_report_source(source)
                    .map(baseline_run)
                    .map_err(at_start),
                RowSpec::Live => live_report_source(source)
                    .map(baseline_run)
                    .map_err(at_start),
            }
        }
        _ => {
            let trace = trace.expect("non-stream targets resolve a trace");
            match spec {
                RowSpec::Kind(kind) => {
                    let mut policy = kind.build(policy_cfg);
                    sim().run_trace(trace, &mut policy)
                }
                RowSpec::Custom { row, build } => {
                    let mut policy = build(policy_cfg);
                    sim().run_trace(trace, &mut policy).map(|mut run| {
                        // The evaluation row names the report, not the
                        // policy's own `name()` — a factory may wrap a
                        // stock collector.
                        run.report.policy = row.clone();
                        run
                    })
                }
                RowSpec::NoGc => Ok(baseline_run(no_gc_report(trace))),
                RowSpec::Live => Ok(baseline_run(live_report(trace))),
            }
        }
    }));
    match attempt {
        Ok(Ok(run)) => CellOutcome::Completed(run),
        Ok(Err(e)) => CellOutcome::Failed(CellFailure {
            program: name.to_string(),
            row: spec.row(),
            cause: FailureCause::Sim(e),
        }),
        Err(payload) => CellOutcome::Failed(CellFailure {
            program: name.to_string(),
            row: spec.row(),
            cause: FailureCause::Panic(panic_message(payload.as_ref())),
        }),
    }
}

/// Stringifies a caught panic payload (the common `&str` / `String` cases;
/// anything else gets a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Executes `total` jobs over a scoped work-stealing pool and returns the
/// results **in job-index order**, independent of completion order.
///
/// The pool is a shared atomic cursor: idle workers steal the next index.
/// With `parallelism == 1` this degenerates to the serial loop, so parallel
/// and serial runs produce identical output for deterministic `f`.
///
/// The pool itself is panic-tolerant: a job that panics kills only its
/// worker thread; surviving workers drain the remaining jobs, and any job
/// lost to a dead worker is re-run serially afterwards (so a panic in `f`
/// surfaces on the caller's thread only if re-running it panics again).
///
/// Used by [`Evaluation::run`] and the budget sweeps in [`crate::sweep`].
pub(crate) fn run_indexed<R, F>(parallelism: usize, total: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if total == 0 {
        return Vec::new();
    }
    let workers = effective_workers(parallelism, total);
    if workers <= 1 {
        return (0..total).map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..total).map(|_| Mutex::new(None)).collect();
    let (cursor_ref, slots_ref, f_ref) = (&cursor, &slots, &f);
    // The scope result is deliberately ignored: a panicking worker must
    // not abort the evaluation. Its unfinished job is recomputed below.
    let _ = crossbeam::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(move || loop {
                let job = cursor_ref.fetch_add(1, Ordering::Relaxed);
                if job >= total {
                    break;
                }
                let result = f_ref(job);
                *slots_ref[job].lock().unwrap_or_else(|p| p.into_inner()) = Some(result);
            });
        }
    });

    slots
        .into_iter()
        .enumerate()
        .map(|(job, slot)| {
            match slot.into_inner().unwrap_or_else(|p| p.into_inner()) {
                Some(result) => result,
                // The worker holding this job died before storing a
                // result; run it here instead.
                None => f(job),
            }
        })
        .collect()
}

fn effective_workers(parallelism: usize, total: usize) -> usize {
    let auto = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let requested = if parallelism == 0 { auto } else { parallelism };
    requested.max(1).min(total)
}

fn baseline_run(report: SimReport) -> SimRun {
    SimRun {
        report,
        curve: MemoryCurve::new(),
    }
}

fn assemble(
    targets: Vec<Target>,
    traces: Vec<Option<Arc<CompiledTrace>>>,
    names: Vec<String>,
    rows: &[RowSpec],
    mut results: Vec<(CellOutcome, Duration, u32)>,
) -> Matrix {
    let mut columns = Vec::with_capacity(targets.len());
    // Drain column-major: jobs were flattened column-by-column.
    let mut rest = results.drain(..);
    for ((target, trace), name) in targets.into_iter().zip(traces).zip(names) {
        let cells = rows
            .iter()
            .map(|spec| {
                let (outcome, elapsed, attempts) = match rest.next() {
                    Some(entry) => entry,
                    // Unreachable by construction (one result per job);
                    // degrade to a reported failure rather than panic.
                    None => (
                        CellOutcome::Failed(CellFailure {
                            program: name.clone(),
                            row: spec.row(),
                            cause: FailureCause::Panic("missing cell result".into()),
                        }),
                        Duration::ZERO,
                        0,
                    ),
                };
                Cell {
                    row: spec.row(),
                    outcome,
                    elapsed,
                    attempts,
                }
            })
            .collect();
        columns.push(Column {
            program: target.program(),
            trace,
            name,
            cells,
        });
    }
    Matrix { columns }
}

/// One column of the matrix: every requested row over one workload.
#[derive(Clone, Debug)]
pub struct Column {
    /// The preset this column measures, if it came from one.
    pub program: Option<Program>,
    /// The (shared) compiled trace the column ran against; `None` for
    /// streaming columns, whose events never materialize in memory.
    pub trace: Option<Arc<CompiledTrace>>,
    /// The workload name (preset label, custom trace name, or streaming
    /// column label).
    pub name: String,
    /// Cells in row order.
    pub cells: Vec<Cell>,
}

impl Column {
    /// The workload name (preset label, custom trace name, or streaming
    /// column label).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// This column's completed reports, in row order (failed cells are
    /// skipped; see [`Column::failures`]).
    pub fn reports(&self) -> impl Iterator<Item = &SimReport> {
        self.cells.iter().filter_map(Cell::report)
    }

    /// This column's failed cells, in row order.
    pub fn failures(&self) -> impl Iterator<Item = &CellFailure> {
        self.cells.iter().filter_map(Cell::failure)
    }
}

/// The assembled evaluation results, in table order: columns in the order
/// requested (presets default to [`Program::ALL`] order), cells in row
/// order. Identical for serial and parallel runs.
#[derive(Clone, Debug)]
pub struct Matrix {
    columns: Vec<Column>,
}

impl Matrix {
    /// Assembles a matrix from externally computed columns — how the
    /// distributed service's client rebuilds the executor's result shape
    /// from served cells, so downstream rendering and comparison code
    /// cannot tell a served matrix from a local one.
    pub fn from_columns(columns: Vec<Column>) -> Matrix {
        Matrix { columns }
    }

    /// Columns in evaluation order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// All cells in table order (column-major).
    pub fn cells(&self) -> impl Iterator<Item = (&Column, &Cell)> {
        self.columns
            .iter()
            .flat_map(|col| col.cells.iter().map(move |cell| (col, cell)))
    }

    /// Every failed cell, in table order.
    pub fn failures(&self) -> impl Iterator<Item = &CellFailure> {
        self.cells().filter_map(|(_, cell)| cell.failure())
    }

    /// True when every cell completed.
    pub fn is_complete(&self) -> bool {
        self.failures().next().is_none()
    }

    /// The report of one (program, collector) cell. `None` when the cell
    /// is absent **or failed** (inspect [`Matrix::failures`] to tell the
    /// two apart).
    pub fn get(&self, program: Program, kind: PolicyKind) -> Option<&SimReport> {
        self.get_row(program, &Row::Policy(kind))
    }

    /// The report of one (program, row) cell — rows include the baselines.
    pub fn get_row(&self, program: Program, row: &Row) -> Option<&SimReport> {
        self.cell(program, row).and_then(Cell::report)
    }

    /// The cell of one (program, row) pair, completed or failed.
    pub fn cell(&self, program: Program, row: &Row) -> Option<&Cell> {
        self.columns
            .iter()
            .find(|c| c.program == Some(program))
            .and_then(|c| c.cells.iter().find(|cell| &cell.row == row))
    }

    /// The column for a preset workload.
    pub fn column(&self, program: Program) -> Option<&Column> {
        self.columns.iter().find(|c| c.program == Some(program))
    }

    /// The column with this workload name (the only handle for streaming
    /// columns, which have no [`Program`]).
    pub fn column_by_name(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, simulate_source};
    use dtb_core::policy::Full;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn trace_cache_presets_are_pointer_equal() {
        let a = TraceCache::new();
        let b = TraceCache::new();
        let first = a.preset(Program::Cfrac);
        assert!(Arc::ptr_eq(&first, &a.preset(Program::Cfrac)));
        // Even across cache instances: presets are process-wide.
        assert!(Arc::ptr_eq(&first, &b.preset(Program::Cfrac)));
    }

    #[test]
    fn trace_cache_custom_round_trips() {
        let cache = TraceCache::new();
        let mut b = dtb_trace::TraceBuilder::new("mine");
        b.alloc(64);
        let arc = cache.insert(b.finish().compile().unwrap());
        assert!(Arc::ptr_eq(&arc, &cache.get("mine").unwrap()));
        assert!(cache.get("absent").is_none());
    }

    #[test]
    fn run_indexed_orders_results_by_job_index() {
        let out = run_indexed(4, 100, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
        assert_eq!(run_indexed(1, 5, |i| i), vec![0, 1, 2, 3, 4]);
        assert!(run_indexed(3, 0, |i| i).is_empty());
    }

    #[test]
    fn single_cell_matrix_matches_direct_simulation() {
        let matrix = Evaluation::new()
            .programs([Program::Cfrac])
            .policies([PolicyKind::Full])
            .baselines(false)
            .parallelism(1)
            .run();
        let direct = simulate(
            &Program::Cfrac.compiled(),
            &mut Full::new(),
            &SimConfig::paper(),
        )
        .unwrap();
        assert_eq!(
            matrix.get(Program::Cfrac, PolicyKind::Full),
            Some(&direct.report)
        );
        assert!(matrix.get(Program::Cfrac, PolicyKind::DtbFm).is_none());
        assert!(matrix.is_complete());
    }

    #[test]
    fn baselines_and_custom_rows_appear_in_order() {
        let matrix = Evaluation::new()
            .programs([Program::Cfrac])
            .policies([PolicyKind::Full])
            .custom_policy("MINE", |_| Box::new(Full::new()))
            .run();
        let rows: Vec<String> = matrix.columns()[0]
            .cells
            .iter()
            .map(|c| c.row.to_string())
            .collect();
        assert_eq!(rows, ["FULL", "MINE", "No GC", "LIVE"]);
        // The custom row is FULL in disguise; identical metrics, its own
        // label.
        let col = matrix.column(Program::Cfrac).unwrap();
        let full = col.cells[0].report().unwrap();
        let mine = col.cells[1].report().unwrap();
        assert_eq!(mine.policy, Row::Custom("MINE".into()));
        assert_eq!(mine.mem_max, full.mem_max);
        assert_eq!(mine.total_traced, full.total_traced);
    }

    #[test]
    fn progress_callback_sees_every_cell() {
        let seen = Arc::new(AtomicUsize::new(0));
        let seen2 = seen.clone();
        let matrix = Evaluation::new()
            .programs([Program::Cfrac])
            .policies([PolicyKind::Full, PolicyKind::Fixed1])
            .baselines(false)
            .on_cell(move |ev| {
                assert_eq!(ev.total, 2);
                assert!(ev.completed >= 1 && ev.completed <= 2);
                assert!(!ev.failed);
                seen2.fetch_add(1, Ordering::Relaxed);
            })
            .run();
        assert_eq!(seen.load(Ordering::Relaxed), 2);
        assert_eq!(matrix.cells().count(), 2);
    }

    #[test]
    fn streaming_column_matches_in_memory_column() {
        use dtb_trace::CompiledSource;

        // A source factory that replays the Cfrac preset record-at-a-time
        // must produce the same reports as the in-memory preset column,
        // for every row including the baselines.
        let matrix = Evaluation::new()
            .programs([Program::Cfrac])
            .source("cfrac-stream", || {
                /// Owns its trace so the boxed source is 'static.
                struct Owned {
                    trace: Arc<CompiledTrace>,
                    pos: usize,
                }
                impl EventSource for Owned {
                    fn meta(&self) -> &dtb_trace::TraceMeta {
                        &self.trace.meta
                    }
                    fn len_hint(&self) -> Option<usize> {
                        Some(self.trace.len())
                    }
                    fn next_record(
                        &mut self,
                    ) -> Result<Option<dtb_trace::ObjectLife>, dtb_trace::SourceError>
                    {
                        if self.pos >= self.trace.len() {
                            return Ok(None);
                        }
                        let life = self.trace.life(self.pos);
                        self.pos += 1;
                        Ok(Some(life))
                    }
                    fn end(&self) -> VirtualTime {
                        self.trace.end
                    }
                }
                Box::new(Owned {
                    trace: Program::Cfrac.compiled(),
                    pos: 0,
                })
            })
            .policies([PolicyKind::Full, PolicyKind::DtbFm])
            .run();
        assert!(matrix.is_complete(), "{:?}", matrix.failures().count());
        let resident = matrix.column(Program::Cfrac).unwrap();
        let streamed = matrix.column_by_name("cfrac-stream").unwrap();
        assert!(streamed.trace.is_none());
        assert_eq!(streamed.name(), "cfrac-stream");
        for (a, b) in resident.cells.iter().zip(&streamed.cells) {
            assert_eq!(a.row, b.row);
            assert_eq!(a.report(), b.report(), "row {}", a.row);
        }
        // CompiledSource over a borrowed trace drives the same engine
        // path; sanity-check one row against it directly.
        let trace = Program::Cfrac.compiled();
        let mut src = CompiledSource::new(&trace);
        let direct = simulate_source(
            &mut src,
            &mut PolicyKind::Full.build(&PolicyConfig::paper()),
            &SimConfig::paper(),
        )
        .unwrap();
        assert_eq!(
            streamed.cells[0].report().unwrap().mem_max,
            direct.report.mem_max
        );
    }

    #[test]
    fn failing_source_is_isolated_per_cell() {
        use dtb_trace::{SourceError, TraceMeta};
        /// Fails immediately on the first record.
        struct Broken(TraceMeta);
        impl EventSource for Broken {
            fn meta(&self) -> &TraceMeta {
                &self.0
            }
            fn next_record(&mut self) -> Result<Option<dtb_trace::ObjectLife>, SourceError> {
                Err(SourceError::Synth("no disk".into()))
            }
            fn end(&self) -> VirtualTime {
                VirtualTime::ZERO
            }
        }
        let matrix = Evaluation::new()
            .programs([Program::Cfrac])
            .source("broken", || Box::new(Broken(TraceMeta::named("broken"))))
            .policies([PolicyKind::Full])
            .run();
        // The healthy preset column is untouched...
        assert!(matrix
            .column(Program::Cfrac)
            .unwrap()
            .failures()
            .next()
            .is_none());
        // ...while every cell of the broken column reports a typed failure.
        let broken = matrix.column_by_name("broken").unwrap();
        assert_eq!(broken.failures().count(), broken.cells.len());
        for f in broken.failures() {
            assert_eq!(f.program, "broken");
            assert!(matches!(
                &f.cause,
                FailureCause::Sim(SimError::Source { .. })
            ));
        }
    }

    #[test]
    fn empty_evaluation_returns_an_empty_matrix() {
        let matrix = Evaluation::new()
            .programs([])
            .policies([PolicyKind::Full])
            .run();
        assert!(matrix.columns().is_empty());
        assert!(matrix.is_complete());
        let matrix = Evaluation::new()
            .programs([Program::Cfrac])
            .policies([])
            .baselines(false)
            .run();
        assert!(matrix.columns().is_empty());
    }

    #[test]
    fn panicking_cell_is_isolated_from_the_rest() {
        let matrix = Evaluation::new()
            .programs([Program::Cfrac])
            .policies([PolicyKind::Full])
            .custom_policy("BOOM", |_| panic!("factory exploded"))
            .baselines(false)
            .run();
        let col = matrix.column(Program::Cfrac).unwrap();
        // FULL completed normally.
        assert!(col.cells[0].report().is_some());
        // BOOM failed with the panic message, typed.
        let failure = col.cells[1].failure().unwrap();
        assert_eq!(failure.row, Row::Custom("BOOM".into()));
        assert_eq!(
            failure.cause,
            FailureCause::Panic("factory exploded".into())
        );
        assert!(!matrix.is_complete());
        assert_eq!(matrix.failures().count(), 1);
    }
}
