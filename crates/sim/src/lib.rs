//! Trace-driven garbage-collection simulator.
//!
//! Reproduces the methodology of Barrett & Zorn's evaluation (Section 5 of
//! the paper): allocation and deallocation events drive a simulation of
//! the collectors; the output is memory and CPU usage plus pause-time
//! distributions.
//!
//! * [`heap`] — the oracle heap: birth-ordered objects with exact death
//!   times; scavenges trace live threatened storage and reclaim dead
//!   threatened storage, leaving *tenured garbage* (dead immune storage)
//!   behind.
//! * [`engine`] — replays a compiled trace, firing a scavenge after every
//!   1 MB of allocation and consulting a
//!   [`TbPolicy`](dtb_core::policy::TbPolicy) for the boundary.
//! * [`metrics`] — Table 2/3/4 measurements (mean/max memory, median/90th
//!   percentile pauses, traced bytes, CPU overhead).
//! * [`baseline`] — the `No GC` and `LIVE` reference rows.
//! * [`curve`] — Figure 2 memory-over-time series.
//! * [`run`] — one-call helpers for the full evaluation matrix.
//! * [`trigger`] — pluggable when-to-collect policies (the orthogonal
//!   dimension the paper fixes at 1 MB of allocation).
//! * [`sweep`] — budget sweeps producing constraint/behaviour frontiers.
//!
//! # Example
//!
//! ```
//! use dtb_core::policy::{PolicyConfig, PolicyKind};
//! use dtb_sim::engine::SimConfig;
//! use dtb_sim::run::run_program;
//! use dtb_trace::programs::Program;
//!
//! let run = run_program(
//!     Program::Cfrac,
//!     PolicyKind::DtbFm,
//!     &PolicyConfig::paper(),
//!     &SimConfig::paper(),
//! );
//! assert!(run.report.collections >= 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod curve;
pub mod engine;
pub mod heap;
pub mod metrics;
pub mod run;
pub mod sweep;
pub mod trigger;

pub use engine::{simulate, SimConfig, SimRun};
pub use heap::{OracleHeap, SimObject};
pub use metrics::SimReport;
