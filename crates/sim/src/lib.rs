//! Trace-driven garbage-collection simulator.
//!
//! Reproduces the methodology of Barrett & Zorn's evaluation (Section 5 of
//! the paper): allocation and deallocation events drive a simulation of
//! the collectors; the output is memory and CPU usage plus pause-time
//! distributions.
//!
//! * [`heap`] — the oracle heap: birth-ordered objects with exact death
//!   times; scavenges trace live threatened storage and reclaim dead
//!   threatened storage, leaving *tenured garbage* (dead immune storage)
//!   behind. Maintained incrementally (Fenwick indices + a lazy death
//!   queue) so a scavenge costs O(threatened tail + log n); the original
//!   scan-based heap survives as [`heap::naive::NaiveHeap`] for
//!   differential testing.
//! * [`engine`] — replays a compiled trace, firing a scavenge after every
//!   1 MB of allocation and consulting a
//!   [`TbPolicy`](dtb_core::policy::TbPolicy) for the boundary.
//! * [`metrics`] — Table 2/3/4 measurements (mean/max memory, median/90th
//!   percentile pauses, traced bytes, CPU overhead).
//! * [`baseline`] — the `No GC` and `LIVE` reference rows.
//! * [`curve`] — Figure 2 memory-over-time series.
//! * [`exec`] — the parallel evaluation executor: a shared
//!   [`TraceCache`](exec::TraceCache) (each preset compiled once per
//!   process) and the [`Evaluation`](exec::Evaluation) builder that fans
//!   the (program × policy) matrix over a work-stealing pool with
//!   deterministic result ordering.
//! * [`error`] — the typed failure taxonomy ([`error::SimError`]): policy
//!   failures, watchdog budget trips, and engine invariant violations.
//! * [`fault`] — adversarial policies for fault-injection tests (NaN /
//!   infinite / future boundaries, fail-after-N, panic-after-N).
//! * [`run`] — deprecated free-function runners, kept as thin wrappers
//!   over [`exec`].
//! * [`trigger`] — pluggable when-to-collect policies (the orthogonal
//!   dimension the paper fixes at 1 MB of allocation).
//! * [`sweep`] — budget sweeps producing constraint/behaviour frontiers
//!   (parallelized over the same pool).
//!
//! # Example
//!
//! ```
//! use dtb_core::policy::PolicyKind;
//! use dtb_sim::exec::Evaluation;
//! use dtb_trace::programs::Program;
//!
//! let matrix = Evaluation::new()
//!     .programs([Program::Cfrac])
//!     .policies([PolicyKind::DtbFm])
//!     .run();
//! let report = matrix.get(Program::Cfrac, PolicyKind::DtbFm).unwrap();
//! assert!(report.collections >= 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod curve;
pub mod engine;
pub mod error;
pub mod exec;
pub mod fault;
pub mod heap;
pub mod metrics;
pub mod run;
pub mod sweep;
pub mod trigger;

pub use engine::{simulate, simulate_with_heap, SimBudget, SimConfig, SimRun};
pub use error::{BudgetKind, InvariantViolation, SimError};
pub use exec::{
    Cell, CellEvent, CellFailure, CellOutcome, Column, Evaluation, FailureCause, Matrix, TraceCache,
};
pub use heap::naive::NaiveHeap;
pub use heap::{OracleHeap, ScavengeOutcome, SimHeap, SimObject, SurvivalSnapshot};
pub use metrics::SimReport;
