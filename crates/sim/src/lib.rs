//! Trace-driven garbage-collection simulator.
//!
//! Reproduces the methodology of Barrett & Zorn's evaluation (Section 5 of
//! the paper): allocation and deallocation events drive a simulation of
//! the collectors; the output is memory and CPU usage plus pause-time
//! distributions.
//!
//! * [`heap`] — the oracle heap: birth-ordered objects with exact death
//!   times; scavenges trace live threatened storage and reclaim dead
//!   threatened storage, leaving *tenured garbage* (dead immune storage)
//!   behind. Maintained incrementally (Fenwick indices + a lazy death
//!   queue) so a scavenge costs O(threatened tail + log n); the original
//!   scan-based heap survives as [`heap::naive::NaiveHeap`] for
//!   differential testing.
//! * [`engine`] — replays a compiled trace or a streaming
//!   [`EventSource`](dtb_trace::EventSource) ([`simulate_source`]),
//!   firing a scavenge after every 1 MB of allocation and consulting a
//!   [`TbPolicy`](dtb_core::policy::TbPolicy) for the boundary. Streaming
//!   runs are bit-identical to in-memory runs and hold O(live set)
//!   memory (the heap compacts reclaimed index slots), so traces larger
//!   than RAM simulate fine.
//! * [`metrics`] — Table 2/3/4 measurements (mean/max memory, median/90th
//!   percentile pauses, traced bytes, CPU overhead).
//! * [`baseline`] — the `No GC` and `LIVE` reference rows.
//! * [`curve`] — Figure 2 memory-over-time series.
//! * [`exec`] — the parallel evaluation executor: a shared
//!   [`TraceCache`](exec::TraceCache) (each preset compiled once per
//!   process) and the [`Evaluation`](exec::Evaluation) builder that fans
//!   the (program × policy) matrix over a work-stealing pool with
//!   deterministic result ordering. Streaming columns
//!   ([`Evaluation::source`](exec::Evaluation::source)) evaluate without
//!   materializing their trace.
//! * [`error`] — the typed failure taxonomy ([`error::SimError`]): policy
//!   failures, watchdog budget trips, and engine invariant violations.
//! * [`fault`] — adversarial policies and sources for fault-injection
//!   tests (NaN / infinite / future boundaries, fail-after-N,
//!   panic-after-N, slow and transiently-failing sources).
//! * [`ckp`] — mid-run simulation checkpoints ([`SimCheckpoint`]): the
//!   engine's complete resumable state in a checksummed `DTBCKP01`
//!   container, with bit-identical resume via
//!   [`RunControl::resuming`](engine::RunControl::resuming).
//! * [`journal`] — the durable evaluation journal: one fsync'd,
//!   checksummed line per completed matrix cell, so
//!   [`Evaluation::resume`](exec::Evaluation::resume) survives crashes
//!   (even `SIGKILL`) losing at most the cell in flight.
//! * [`run`] — migration notes for the removed free-function runners
//!   (superseded by [`exec`]).
//! * [`trigger`] — pluggable when-to-collect policies (the orthogonal
//!   dimension the paper fixes at 1 MB of allocation).
//! * [`sweep`] — budget sweeps producing constraint/behaviour frontiers
//!   (parallelized over the same pool).
//!
//! # Example
//!
//! ```
//! use dtb_core::policy::PolicyKind;
//! use dtb_sim::exec::Evaluation;
//! use dtb_trace::programs::Program;
//!
//! let matrix = Evaluation::new()
//!     .programs([Program::Cfrac])
//!     .policies([PolicyKind::DtbFm])
//!     .run();
//! let report = matrix.get(Program::Cfrac, PolicyKind::DtbFm).unwrap();
//! assert!(report.collections >= 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod ckp;
pub mod curve;
pub mod engine;
pub mod error;
pub mod exec;
pub mod fault;
pub mod heap;
pub mod journal;
pub mod metrics;
pub mod par;
pub mod run;
pub mod sweep;
pub mod trigger;

pub use ckp::{load_checkpoint, save_checkpoint, CkpError, SimCheckpoint};
pub use engine::{simulate, simulate_source, RunControl, Sim, SimBudget, SimConfig, SimRun};
pub use error::{BudgetKind, InvariantViolation, SimError};
pub use exec::{
    Cell, CellEvent, CellFailure, CellOutcome, Column, Evaluation, FailureCause, Matrix,
    RetryPolicy, SourceFactory, TraceCache,
};
pub use heap::naive::NaiveHeap;
pub use heap::{
    CheckpointHeap, HeapSnapshot, OracleHeap, ScavengeOutcome, SimHeap, SimObject, SurvivalSnapshot,
};
pub use journal::{read_journal, Journal, JournalCell, JournalHeader, JournalWriter};
pub use metrics::{MetricsState, SimReport};
