//! Parameter sweeps: the constraint/behaviour frontier as data.
//!
//! The paper's central promise is *predictability*: turn the one knob, get
//! proportional behaviour. A [`sweep_pause_budget`] or
//! [`sweep_memory_budget`] makes that promise measurable — one simulation
//! per budget value, returning the frontier a user would consult to pick
//! their constraint (see the `policy_explorer` example).
//!
//! Budget points are independent simulations, so sweeps fan out over the
//! same work-stealing pool as [`Evaluation`](crate::exec::Evaluation);
//! points still return in ascending budget order.

use crate::engine::{simulate, SimConfig};
use crate::error::SimError;
use crate::exec::run_indexed;
use crate::metrics::SimReport;
use dtb_core::cost::CostModel;
use dtb_core::policy::{PolicyConfig, PolicyKind};
use dtb_core::time::Bytes;
use dtb_trace::event::CompiledTrace;
use serde::{Deserialize, Serialize};

/// One point on a constraint frontier.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FrontierPoint {
    /// The budget this point was measured at (bytes: trace budget for
    /// pause sweeps, memory budget for memory sweeps).
    pub budget: Bytes,
    /// The full measurements at this budget.
    pub report: SimReport,
}

/// A budget sweep over one workload for one constrained policy.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Frontier {
    /// The swept collector ([`PolicyKind::DtbFm`] or
    /// [`PolicyKind::DtbMem`] for the built-in sweeps); serialized as its
    /// table label.
    pub policy: PolicyKind,
    /// Workload name.
    pub program: String,
    /// Points in ascending budget order.
    pub points: Vec<FrontierPoint>,
}

impl Frontier {
    /// True when the swept metric responds monotonically to the budget:
    /// memory sweeps must never *trace more* at a larger budget, pause
    /// sweeps must never have a *larger median* at a smaller budget.
    pub fn traced_monotone_nonincreasing(&self) -> bool {
        self.points
            .windows(2)
            .all(|w| w[1].report.total_traced <= w[0].report.total_traced)
    }
}

/// Runs one budget sweep over the shared worker pool. The per-point
/// configurations are independent, so points are jobs; `run_indexed`
/// returns them in budget (index) order regardless of completion order.
fn sweep(
    trace: &CompiledTrace,
    kind: PolicyKind,
    budgets: &[Bytes],
    configs: &[PolicyConfig],
    sim: &SimConfig,
) -> Result<Frontier, SimError> {
    let points = run_indexed(0, configs.len(), |i| {
        let mut policy = kind.build(&configs[i]);
        simulate(trace, &mut policy, sim).map(|run| FrontierPoint {
            budget: budgets[i],
            report: run.report,
        })
    })
    .into_iter()
    .collect::<Result<Vec<_>, _>>()?;
    Ok(Frontier {
        policy: kind,
        program: trace.meta.name.clone(),
        points,
    })
}

/// Sweeps `DTBFM` over pause budgets (milliseconds).
///
/// # Errors
///
/// Propagates the first [`SimError`] (in budget order) from any point's
/// simulation.
///
/// # Panics
///
/// Panics if `pause_budgets_ms` is empty or not ascending.
pub fn sweep_pause_budget(
    trace: &CompiledTrace,
    pause_budgets_ms: &[f64],
    sim: &SimConfig,
) -> Result<Frontier, SimError> {
    assert!(!pause_budgets_ms.is_empty(), "empty sweep");
    assert!(
        pause_budgets_ms.windows(2).all(|w| w[0] < w[1]),
        "budgets must ascend"
    );
    let cost = CostModel::paper();
    let budgets: Vec<Bytes> = pause_budgets_ms
        .iter()
        .map(|ms| cost.trace_budget_for_pause_ms(*ms))
        .collect();
    let configs: Vec<PolicyConfig> = budgets
        .iter()
        .map(|b| PolicyConfig::new(*b, Bytes::from_kb(1 << 20)))
        .collect();
    sweep(trace, PolicyKind::DtbFm, &budgets, &configs, sim)
}

/// Sweeps `DTBMEM` over memory budgets (bytes).
///
/// # Errors
///
/// Propagates the first [`SimError`] (in budget order) from any point's
/// simulation.
///
/// # Panics
///
/// Panics if `mem_budgets` is empty or not ascending.
pub fn sweep_memory_budget(
    trace: &CompiledTrace,
    mem_budgets: &[Bytes],
    sim: &SimConfig,
) -> Result<Frontier, SimError> {
    assert!(!mem_budgets.is_empty(), "empty sweep");
    assert!(
        mem_budgets.windows(2).all(|w| w[0] < w[1]),
        "budgets must ascend"
    );
    let configs: Vec<PolicyConfig> = mem_budgets
        .iter()
        .map(|b| PolicyConfig::new(Bytes::new(50_000), *b))
        .collect();
    sweep(trace, PolicyKind::DtbMem, mem_budgets, &configs, sim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtb_trace::programs::Program;
    use std::sync::Arc;

    fn cfrac() -> Arc<CompiledTrace> {
        Program::Cfrac.compiled()
    }

    #[test]
    fn memory_sweep_is_monotone_in_tracing() {
        let f = sweep_memory_budget(
            &cfrac(),
            &[
                Bytes::from_kb(100),
                Bytes::from_kb(500),
                Bytes::from_kb(2000),
            ],
            &SimConfig::paper(),
        )
        .unwrap();
        assert_eq!(f.policy, PolicyKind::DtbMem);
        assert_eq!(f.points.len(), 3);
        assert!(f.traced_monotone_nonincreasing());
    }

    #[test]
    fn pause_sweep_medians_track_budgets() {
        let f = sweep_pause_budget(&cfrac(), &[10.0, 100.0, 1_000.0], &SimConfig::paper()).unwrap();
        assert_eq!(f.policy, PolicyKind::DtbFm);
        assert_eq!(f.points.len(), 3);
        // Larger budget → median pause no smaller than a strict regime
        // change would allow; at minimum the sweep runs and the largest
        // budget's median is bounded by a full collection's pause.
        for p in &f.points {
            assert!(p.report.pause_median_ms >= 0.0);
        }
        // More pause budget never means more memory.
        let mems: Vec<u64> = f
            .points
            .iter()
            .map(|p| p.report.mem_mean.as_u64())
            .collect();
        assert!(
            mems.windows(2).all(|w| w[1] <= w[0] + w[0] / 10),
            "{mems:?}"
        );
    }

    #[test]
    #[should_panic(expected = "budgets must ascend")]
    fn unsorted_budgets_rejected() {
        let _ = sweep_memory_budget(
            &cfrac(),
            &[Bytes::from_kb(500), Bytes::from_kb(100)],
            &SimConfig::paper(),
        );
    }
}
