//! The trace-driven scavenge engine.
//!
//! Replays a compiled trace against a [`SimHeap`] (the incremental
//! [`OracleHeap`] by default), invoking the boundary policy every time
//! the paper's GC trigger fires (1 MB of allocation by default,
//! Section 5) and accumulating the table metrics.
//!
//! The engine is panic-free on its error paths: malformed traces, failing
//! policies, exhausted watchdog budgets, and broken accounting identities
//! all surface as typed [`SimError`]s.
//!
//! # Entry points
//!
//! One builder, [`Sim`], configures and launches every kind of run;
//! [`simulate`] and [`simulate_source`] remain as one-line conveniences
//! for the two everyday cases. The former six free functions map onto the
//! builder as follows (the explicit-heap variants pick the implementation
//! by type parameter — heaps are always constructed inside the engine,
//! sized from the source's length hint or a resume snapshot):
//!
//! | Before | Now |
//! |---|---|
//! | `simulate(t, p, &cfg)` | unchanged (= `Sim::new(cfg).run_trace(t, p)`) |
//! | `simulate_source(s, p, &cfg)` | unchanged (= `Sim::new(cfg).run(s, p)`) |
//! | `simulate_with_heap::<H>(t, p, &cfg)` | `Sim::new(cfg).heap::<H>().run_trace(t, p)` |
//! | `simulate_source_with_heap::<H, _>(s, p, &cfg)` | `Sim::new(cfg).heap::<H>().run(s, p)` |
//! | `simulate_source_resumable(s, p, &cfg, rc)` | `Sim::new(cfg).control(rc).run(s, p)` |
//! | `simulate_source_resumable_with_heap::<H, _>(s, p, &cfg, rc)` | `Sim::new(cfg).heap::<H>().control(rc).run(s, p)` |
//!
//! The builder also exposes what the free functions never could without a
//! seventh and eighth variant: [`Sim::threads`] opts a run into the
//! deterministic intra-cell parallel engine (see [`crate::par`]).

use crate::ckp::{save_checkpoint, CkpError, SimCheckpoint};
use crate::curve::{CurvePoint, MemoryCurve};
use crate::error::{BudgetKind, InvariantViolation, SimError};
use crate::heap::{CheckpointHeap, OracleHeap, SimHeap, SimObject};
use crate::metrics::{MetricsCollector, SimReport};
use crate::trigger::Trigger;
use dtb_core::cost::CostModel;
use dtb_core::history::ScavengeRecord;
use dtb_core::policy::{ScavengeContext, TbPolicy};
use dtb_core::time::{Bytes, VirtualTime};
use dtb_trace::event::{CompiledTrace, TraceMeta};
use dtb_trace::{CompiledSource, EventBlock, EventSource, DEFAULT_BLOCK_EVENTS};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};

/// Heap index preallocation cap for streaming sources: an unbounded
/// source must not translate its length hint into an unbounded upfront
/// allocation.
const MAX_PREALLOC_SLOTS: usize = 1 << 20;

/// A per-run watchdog: hard caps that turn a runaway simulation into a
/// typed [`SimError::BudgetExceeded`] instead of a hang.
///
/// The default is unlimited — the caps exist for evaluations over
/// untrusted traces or policies, where a single cell must not be able to
/// stall the whole matrix.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimBudget {
    /// Maximum allocation events to process (`None` = unlimited).
    pub max_events: Option<u64>,
    /// Maximum scavenges to perform (`None` = unlimited).
    pub max_scavenges: Option<u64>,
}

impl SimBudget {
    /// No limits: the watchdog never fires.
    pub const UNLIMITED: SimBudget = SimBudget {
        max_events: None,
        max_scavenges: None,
    };

    /// Caps processed allocation events.
    pub fn events(n: u64) -> SimBudget {
        SimBudget {
            max_events: Some(n),
            ..SimBudget::UNLIMITED
        }
    }

    /// Caps performed scavenges.
    pub fn scavenges(n: u64) -> SimBudget {
        SimBudget {
            max_scavenges: Some(n),
            ..SimBudget::UNLIMITED
        }
    }
}

/// Simulation parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// When to scavenge (paper: every 1 million bytes of allocation).
    pub trigger: Trigger,
    /// The machine cost model (paper: 10 MIPS, 500 KB/s tracing).
    pub cost: CostModel,
    /// When true, the run also records a memory-over-time curve
    /// (Figure 2); costs one point per scavenge plus one per sample
    /// interval.
    pub record_curve: bool,
    /// Watchdog caps on events and scavenges (default: unlimited).
    pub budget: SimBudget,
    /// When true, the engine re-derives its accounting identities after
    /// every scavenge (storage conservation, scavenge bookkeeping, the
    /// boundary range) and fails with [`SimError::Invariant`] on any
    /// mismatch. Defaults to on in debug builds, off in release; set it
    /// explicitly to opt in under release.
    pub check_invariants: bool,
}

fn default_check_invariants() -> bool {
    cfg!(debug_assertions)
}

impl SimConfig {
    /// The paper's Section 5 configuration.
    pub fn paper() -> SimConfig {
        SimConfig {
            trigger: Trigger::paper(),
            cost: CostModel::paper(),
            record_curve: false,
            budget: SimBudget::UNLIMITED,
            check_invariants: default_check_invariants(),
        }
    }

    /// Enables curve recording.
    pub fn with_curve(mut self) -> SimConfig {
        self.record_curve = true;
        self
    }

    /// Sets the watchdog budget.
    pub fn with_budget(mut self, budget: SimBudget) -> SimConfig {
        self.budget = budget;
        self
    }

    /// Forces invariant checking on or off (overriding the build-profile
    /// default).
    pub fn with_invariant_checks(mut self, on: bool) -> SimConfig {
        self.check_invariants = on;
        self
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::paper()
    }
}

/// The result of simulating one collector over one trace: the table
/// metrics plus (optionally) the Figure 2 memory curve.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimRun {
    /// Table metrics.
    pub report: SimReport,
    /// Memory-over-time curve; empty unless requested in [`SimConfig`].
    pub curve: MemoryCurve,
}

/// How often a checkpointing run writes by default: every 10k events is
/// a few checkpoints per second on the paper workloads, cheap next to
/// the simulation itself.
pub const DEFAULT_CHECKPOINT_EVERY: u64 = 10_000;

/// Out-of-band controls for one engine run: cooperative cancellation,
/// periodic checkpointing, and resuming from a prior checkpoint.
///
/// [`RunControl::default`] is a plain uninterruptible run — the classic
/// entry points ([`simulate`], [`simulate_source`], …) all use it, and
/// with it the engine's hot loop does no extra work beyond one relaxed
/// atomic load per event.
#[derive(Clone, Debug, Default)]
pub struct RunControl<'a> {
    /// When set, the engine polls this flag between events and returns
    /// [`SimError::Cancelled`] once it reads `true`. The executor's
    /// deadline watchdog flips it from another thread.
    pub cancel: Option<&'a AtomicBool>,
    /// When set, the engine atomically rewrites this file with a
    /// [`SimCheckpoint`] every [`RunControl::checkpoint_every`] events.
    pub checkpoint_path: Option<PathBuf>,
    /// Checkpoint cadence in events; `0` disables periodic checkpoints
    /// even when a path is set.
    pub checkpoint_every: u64,
    /// When set, the engine restores this state (and seeks the source
    /// past it) instead of starting from scratch.
    pub resume_from: Option<SimCheckpoint>,
    /// Events per [`dtb_trace::EventBlock`] chunk in the serial drive
    /// loop: `0` uses [`dtb_trace::DEFAULT_BLOCK_EVENTS`]; `1` forces the
    /// exact per-event reference path (every event runs the full
    /// per-event body, no segment batching). Any value produces
    /// bit-identical results — this is a throughput knob and a
    /// differential-testing handle, which is why it lives here and not in
    /// the checkpoint-compared [`SimConfig`].
    pub block_events: usize,
}

impl<'a> RunControl<'a> {
    /// A plain run: no cancellation, no checkpoints, no resume.
    pub fn new() -> RunControl<'a> {
        RunControl::default()
    }

    /// Polls `flag` between events, cancelling the run once it is set.
    pub fn with_cancel(mut self, flag: &'a AtomicBool) -> RunControl<'a> {
        self.cancel = Some(flag);
        self
    }

    /// Writes a checkpoint to `path` every `every` events.
    pub fn with_checkpoints(mut self, path: impl Into<PathBuf>, every: u64) -> RunControl<'a> {
        self.checkpoint_path = Some(path.into());
        self.checkpoint_every = every;
        self
    }

    /// Resumes from a previously loaded checkpoint.
    pub fn resuming(mut self, ckp: SimCheckpoint) -> RunControl<'a> {
        self.resume_from = Some(ckp);
        self
    }

    /// Sets the serial drive loop's chunk size in events (see
    /// [`RunControl::block_events`]).
    pub fn with_block_events(mut self, n: usize) -> RunControl<'a> {
        self.block_events = n;
        self
    }
}

/// Refuses to resume a checkpoint that belongs to a different run.
///
/// The *physics* must match — trace, policy, trigger, cost model, curve
/// recording — because they shape every number the resumed half
/// produces. The budget and invariant-checking knobs are deliberately
/// not compared: interrupting a budgeted run and resuming it with a
/// different (or no) budget is a supported workflow and cannot change
/// any simulated value.
fn check_resume_compat(
    ckp: &SimCheckpoint,
    config: &SimConfig,
    meta: &TraceMeta,
    policy: &str,
) -> Result<(), CkpError> {
    let mismatch = |what: &'static str, expected: String, found: String| {
        Err(CkpError::Mismatch {
            what,
            expected,
            found,
        })
    };
    if ckp.trace != meta.name {
        return mismatch("trace", meta.name.clone(), ckp.trace.clone());
    }
    if ckp.policy != policy {
        return mismatch("policy", policy.to_string(), ckp.policy.clone());
    }
    if ckp.config.trigger != config.trigger {
        return mismatch(
            "trigger",
            format!("{:?}", config.trigger),
            format!("{:?}", ckp.config.trigger),
        );
    }
    if ckp.config.cost != config.cost {
        return mismatch(
            "cost model",
            format!("{:?}", config.cost),
            format!("{:?}", ckp.config.cost),
        );
    }
    if ckp.config.record_curve != config.record_curve {
        return mismatch(
            "curve recording",
            config.record_curve.to_string(),
            ckp.config.record_curve.to_string(),
        );
    }
    Ok(())
}

/// Simulates `policy` over `trace`.
///
/// Mirrors the paper's methodology: allocation events drive the clock; a
/// scavenge fires whenever [`SimConfig::trigger`] says so (the paper's
/// default: every 1 MB of allocation); the policy picks the threatening
/// boundary; the oracle heap
/// traces live threatened storage and reclaims the dead threatened
/// storage. Pause times and CPU overhead follow from the cost model.
///
/// # Errors
///
/// * [`SimError::Invariant`] when the trace is malformed (births out of
///   order, deaths before births — checked on every event, so a corrupted
///   trace can never panic the heap) or, with
///   [`SimConfig::check_invariants`] on, when a post-scavenge accounting
///   identity fails.
/// * [`SimError::Policy`] when the boundary policy returns an error.
/// * [`SimError::BudgetExceeded`] when a [`SimBudget`] cap is hit.
///
/// # Example
///
/// ```
/// use dtb_core::policy::Full;
/// use dtb_sim::engine::{simulate, SimConfig};
/// use dtb_trace::TraceBuilder;
///
/// let mut b = TraceBuilder::new("tiny");
/// for _ in 0..40 {
///     let id = b.alloc(50_000);
///     b.free(id);
/// }
/// let trace = b.finish().compile()?;
/// let run = simulate(&trace, &mut Full::new(), &SimConfig::paper()).unwrap();
/// assert_eq!(run.report.collections, 2); // 2 MB allocated, 1 MB trigger
/// # Ok::<(), dtb_trace::event::TraceError>(())
/// ```
pub fn simulate(
    trace: &CompiledTrace,
    policy: &mut dyn TbPolicy,
    config: &SimConfig,
) -> Result<SimRun, SimError> {
    Sim::new(*config).run_trace(trace, policy)
}

/// Simulates `policy` over a streaming [`EventSource`].
///
/// Identical semantics to [`simulate`] — the in-memory entry points
/// delegate here through [`CompiledSource`] — but the engine only ever
/// holds the current record plus the heap's index of still-resident
/// objects, so a sharded on-disk trace ([`dtb_trace::ShardReader`]) or an
/// unbounded generator ([`dtb_trace::SynthSource`]) simulates in
/// O(live set) memory.
///
/// # Errors
///
/// Everything [`simulate`] reports, plus [`SimError::Source`] when the
/// source itself fails mid-stream (I/O, shard corruption, generator
/// fault).
pub fn simulate_source(
    source: &mut (impl EventSource + ?Sized),
    policy: &mut dyn TbPolicy,
    config: &SimConfig,
) -> Result<SimRun, SimError> {
    Sim::new(*config).run(source, policy)
}

/// One configured simulation, ready to launch: the single entry point
/// behind every way of running the engine (see the module docs for the
/// migration table from the former free functions).
///
/// A `Sim` owns its [`SimConfig`], an optional [`RunControl`] (cooperative
/// cancellation, periodic checkpointing, resume), a heap implementation
/// chosen by type parameter (the incremental [`OracleHeap`] unless
/// [`Sim::heap`] overrides it — the differential suites substitute the
/// scan-based [`crate::heap::naive::NaiveHeap`]), and a thread count for
/// the deterministic intra-cell parallel engine. Launch with [`Sim::run`]
/// (streaming source) or [`Sim::run_trace`] (compiled in-memory trace).
///
/// Heaps must be [`CheckpointHeap`]s so every run, whichever heap it
/// picks, can execute under a checkpointing control.
///
/// # Example
///
/// ```
/// use dtb_core::policy::Full;
/// use dtb_sim::engine::{Sim, SimConfig};
/// use dtb_trace::TraceBuilder;
///
/// let mut b = TraceBuilder::new("tiny");
/// for _ in 0..40 {
///     let id = b.alloc(50_000);
///     b.free(id);
/// }
/// let trace = b.finish().compile()?;
/// let run = Sim::new(SimConfig::paper())
///     .run_trace(&trace, &mut Full::new())
///     .unwrap();
/// assert_eq!(run.report.collections, 2);
/// # Ok::<(), dtb_trace::event::TraceError>(())
/// ```
#[derive(Debug)]
pub struct Sim<'c, H: CheckpointHeap = OracleHeap> {
    config: SimConfig,
    control: RunControl<'c>,
    threads: usize,
    _heap: std::marker::PhantomData<H>,
}

impl<'c> Sim<'c, OracleHeap> {
    /// A simulation of `config` physics over the incremental
    /// [`OracleHeap`], uncontrolled and single-threaded until the other
    /// builder methods say otherwise.
    pub fn new(config: SimConfig) -> Sim<'c, OracleHeap> {
        Sim {
            config,
            control: RunControl::new(),
            threads: 1,
            _heap: std::marker::PhantomData,
        }
    }
}

impl<'c, H: CheckpointHeap> Sim<'c, H> {
    /// Attaches out-of-band controls: cooperative cancellation between
    /// events, periodic checkpoints, and resuming from a prior
    /// checkpoint.
    ///
    /// Resuming is **bit-identical**: a run interrupted at any point and
    /// resumed from its last checkpoint produces exactly the [`SimRun`] —
    /// report, history, and curve — of a run that never stopped, for
    /// every policy and for in-memory, synthetic, and sharded sources
    /// alike (the checkpoint replays the engine's complete state, and the
    /// source seeks to the recorded clock).
    pub fn control(mut self, control: RunControl<'c>) -> Sim<'c, H> {
        self.control = control;
        self
    }

    /// Selects the heap implementation by type parameter.
    ///
    /// The engine always constructs the heap itself — sized from the
    /// source's length hint, or rebuilt from a resume snapshot — so the
    /// builder takes a type, not a value.
    pub fn heap<H2: CheckpointHeap>(self) -> Sim<'c, H2> {
        Sim {
            config: self.config,
            control: self.control,
            threads: self.threads,
            _heap: std::marker::PhantomData,
        }
    }

    /// Sets the serial drive loop's chunk size in events: `0` keeps the
    /// default ([`dtb_trace::DEFAULT_BLOCK_EVENTS`]), `1` forces the
    /// per-event reference path. Results are bit-identical at every
    /// setting; only throughput changes.
    pub fn block_events(mut self, n: usize) -> Sim<'c, H> {
        self.control.block_events = n;
        self
    }

    /// Runs with `n` worker threads via the deterministic per-epoch
    /// decomposition in [`crate::par`], when the run is eligible:
    /// allocation-triggered, not checkpointing, not resuming, and over
    /// the default heap. Ineligible runs (and `n <= 1`) execute serially
    /// — which is indistinguishable, because the parallel engine is
    /// bit-identical to the serial one by construction.
    pub fn threads(mut self, n: usize) -> Sim<'c, H> {
        self.threads = n.max(1);
        self
    }

    /// Simulates `policy` over a streaming [`EventSource`].
    ///
    /// # Errors
    ///
    /// * [`SimError::Invariant`] when the trace is malformed (births out
    ///   of order, deaths before births — checked on every event, so a
    ///   corrupted trace can never panic the heap) or, with
    ///   [`SimConfig::check_invariants`] on, when a post-scavenge
    ///   accounting identity fails.
    /// * [`SimError::Policy`] when the boundary policy returns an error.
    /// * [`SimError::BudgetExceeded`] when a [`SimBudget`] cap is hit.
    /// * [`SimError::Source`] when the source fails mid-stream.
    /// * [`SimError::Cancelled`] when the control's cancel flag is
    ///   observed.
    /// * [`SimError::Checkpoint`] when a checkpoint cannot be written or
    ///   the resume state belongs to a different run.
    pub fn run<S: EventSource + ?Sized>(
        self,
        source: &mut S,
        policy: &mut dyn TbPolicy,
    ) -> Result<SimRun, SimError> {
        // All three execution modes (serial, block, parallel) funnel
        // through here, and the drive loop always executes on this
        // thread (the parallel engine only fans out epoch preparation),
        // so one span guard covers every scavenge event of the run.
        let span = ObsRunSpan::begin(
            policy.name(),
            &source.meta().name,
            self.threads,
            self.control.block_events,
        );
        let result = if self.threads > 1 && H::EPOCH_PARALLEL && self.parallel_eligible() {
            crate::par::run_parallel(source, policy, &self.config, &self.control, self.threads)
        } else {
            run_serial::<H, S>(source, policy, &self.config, self.control)
        };
        span.finish(&result);
        result
    }

    /// Simulates `policy` over a compiled in-memory trace.
    pub fn run_trace(
        self,
        trace: &CompiledTrace,
        policy: &mut dyn TbPolicy,
    ) -> Result<SimRun, SimError> {
        self.run(&mut CompiledSource::new(trace), policy)
    }

    /// Parallel decomposition requires epoch boundaries that are a pure
    /// function of the allocation prefix (so workers can find them
    /// without simulating), and a run that neither checkpoints nor
    /// resumes (engine state only exists at epoch granularity there).
    fn parallel_eligible(&self) -> bool {
        matches!(self.config.trigger, Trigger::Allocation(_))
            && self.control.checkpoint_path.is_none()
            && self.control.resume_from.is_none()
    }
}

/// The serial engine: one thread, record-at-a-time, the reference
/// semantics every other execution mode must reproduce bit-identically.
pub(crate) fn run_serial<H: CheckpointHeap, S: EventSource + ?Sized>(
    source: &mut S,
    policy: &mut dyn TbPolicy,
    config: &SimConfig,
    control: RunControl<'_>,
) -> Result<SimRun, SimError> {
    if let Err(e) = config.trigger.validate() {
        return Err(SimError::Invariant {
            at: VirtualTime::ZERO,
            violation: InvariantViolation::InvalidTrigger { factor: e.factor },
        });
    }
    // Curve sampling between scavenges, if requested: every trigger/8.
    let sample_every = Bytes::new((config.trigger.allocation_scale().as_u64() / 8).max(1));
    // Hoisted out of the hot loop: an unlimited budget becomes a cap the
    // u64 event counter can never reach.
    let max_events = config.budget.max_events.unwrap_or(u64::MAX);

    let mut heap;
    let mut metrics;
    let mut curve;
    let mut since_gc;
    let mut since_sample;
    let mut clock;
    let mut ledger;
    match control.resume_from {
        Some(ckp) => {
            check_resume_compat(&ckp, config, source.meta(), policy.name()).map_err(|source| {
                SimError::Checkpoint {
                    at: ckp.clock,
                    source,
                }
            })?;
            policy
                .restore_state(&ckp.policy_state)
                .map_err(|source| SimError::Policy {
                    at: ckp.clock,
                    collection: ckp.metrics.history.len(),
                    source,
                })?;
            source.seek(ckp.clock).map_err(|source| SimError::Source {
                at: ckp.clock,
                source,
            })?;
            heap = H::restore(&ckp.heap);
            metrics = MetricsCollector::restore(config.cost, ckp.metrics);
            curve = ckp.curve;
            since_gc = ckp.since_gc;
            since_sample = ckp.since_sample;
            clock = ckp.clock;
            ledger = Ledger {
                events: ckp.events,
                allocated: ckp.allocated,
                reclaimed: ckp.reclaimed,
                prev_birth: ckp.prev_birth,
            };
        }
        None => {
            // A known-length source sizes the heap index exactly; an
            // unbounded one starts from a capped guess and grows (the
            // dead-prefix compaction in `OracleHeap` keeps the index
            // proportional to the resident set).
            heap = H::with_capacity(source.len_hint().unwrap_or(0).min(MAX_PREALLOC_SLOTS));
            metrics = MetricsCollector::new(config.cost);
            curve = MemoryCurve::new();
            since_gc = Bytes::ZERO;
            since_sample = Bytes::ZERO;
            clock = VirtualTime::ZERO;
            ledger = Ledger::default();
        }
    }

    // The drive loop pulls events in blocks and processes each block in
    // *segments*: a safe prefix — events that provably fire no trigger,
    // curve sample, budget error, shape error, or checkpoint — batches
    // straight into the heap's columnar bulk-insert path, and the one
    // event at the segment boundary replays the exact per-event body.
    // Every boundary condition is monotone in the byte prefix sum, so the
    // safe prefix length is found by binary search / partition point over
    // one precomputed prefix-sum array per block. Results are
    // bit-identical to the per-event path at every block size; `1` keeps
    // every event on the per-event body (the differential reference).
    let block_cap = if control.block_events == 0 {
        DEFAULT_BLOCK_EVENTS
    } else {
        control.block_events
    };
    let per_event_reference = block_cap <= 1;
    let mut block = EventBlock::new(block_cap);
    // Byte prefix sums over the current block: pb[i] = bytes of the first
    // i records. Reused across blocks.
    let mut pb: Vec<u64> = Vec::with_capacity(block_cap + 1);

    'drive: loop {
        if let Some(flag) = control.cancel {
            if flag.load(Ordering::Relaxed) {
                return Err(SimError::Cancelled { at: clock });
            }
        }
        let n = source.next_block(&mut block);
        if n == 0 {
            match block.take_error() {
                Some(source) => return Err(SimError::Source { at: clock, source }),
                None => break 'drive,
            }
        }
        let births = block.births();
        let sizes = block.sizes();
        let deaths = block.deaths();
        pb.clear();
        pb.push(0);
        let mut acc = 0u64;
        for &sz in sizes {
            acc += sz as u64;
            pb.push(acc);
        }

        let mut idx = 0usize;
        while idx < n {
            let remaining = n - idx;
            let s = if per_event_reference {
                0
            } else {
                // Cap the safe prefix at the first event that would hit
                // the budget, land on a checkpoint boundary, or cross the
                // curve sample interval.
                let base = pb[idx];
                let s_budget =
                    usize::try_from(max_events.saturating_sub(ledger.events)).unwrap_or(usize::MAX);
                let s_ckpt = if control.checkpoint_path.is_some() && control.checkpoint_every > 0 {
                    let every = control.checkpoint_every;
                    let next_mult = (ledger.events / every + 1) * every;
                    usize::try_from(next_mult - ledger.events - 1).unwrap_or(usize::MAX)
                } else {
                    usize::MAX
                };
                let s_curve = if config.record_curve {
                    let ss = since_sample.as_u64();
                    let lim = sample_every.as_u64();
                    pb[idx + 1..=idx + remaining].partition_point(|&p| ss + (p - base) < lim)
                } else {
                    usize::MAX
                };
                let upper = remaining.min(s_budget).min(s_ckpt).min(s_curve);
                // Largest prefix the trigger provably stays quiet for:
                // `should_collect` is monotone non-decreasing in
                // (since_gc, mem) for a fixed last-surviving value, and
                // both arguments grow with the byte prefix sum, so the
                // predicate flips at most once over the segment.
                let mem0 = heap.mem_in_use();
                let last_surviving = metrics.history().last().map(|r| r.surviving);
                let (mut lo, mut hi) = (0usize, upper);
                while lo < hi {
                    let mid = lo + (hi - lo).div_ceil(2);
                    let added = Bytes::new(pb[idx + mid] - base);
                    if config
                        .trigger
                        .should_collect(since_gc + added, mem0 + added, last_surviving)
                    {
                        hi = mid - 1;
                    } else {
                        lo = mid;
                    }
                }
                // Trace-shape screening: the batch path requires strictly
                // increasing births and death ≥ birth (the no-death
                // sentinel `u64::MAX` passes trivially); the first
                // violating event falls to the per-event body, which
                // raises the exact typed error.
                let mut s = lo;
                let mut prev_u = ledger.prev_birth.map(|b| b.as_u64());
                for (k, (&b, &d)) in births[idx..idx + lo].iter().zip(&deaths[idx..]).enumerate() {
                    if prev_u.is_some_and(|p| b <= p) || d < b {
                        s = k;
                        break;
                    }
                    prev_u = Some(b);
                }
                s
            };

            if s > 0 {
                let end = idx + s;
                // Memory held its previous level while each object was
                // being allocated: replay the per-event record_memory
                // sequence (same f64 operation order) with a running
                // level — within a safe segment memory only moves by
                // inserts, because deaths shift bytes between the live
                // and dead ledgers without changing their sum.
                let mut mem = heap.mem_in_use();
                for &sz in &sizes[idx..end] {
                    let size = Bytes::new(sz as u64);
                    metrics.record_memory(mem, size);
                    mem += size;
                }
                clock = VirtualTime::from_bytes(births[end - 1]);
                heap.insert_block(&births[idx..end], &sizes[idx..end], &deaths[idx..end]);
                let added = Bytes::new(pb[end] - pb[idx]);
                ledger.events += s as u64;
                ledger.prev_birth = Some(clock);
                ledger.allocated += added;
                since_gc += added;
                since_sample += added;
                idx = end;
                continue;
            }

            // Segment boundary (or per-event reference mode): the exact
            // per-event body, bit for bit.
            if let Some(flag) = control.cancel {
                if flag.load(Ordering::Relaxed) {
                    return Err(SimError::Cancelled { at: clock });
                }
            }
            let birth = VirtualTime::from_bytes(births[idx]);
            let obj_size = sizes[idx];
            let death =
                (deaths[idx] != EventBlock::NO_DEATH).then(|| VirtualTime::from_bytes(deaths[idx]));
            ledger.events += 1;
            if ledger.events > max_events {
                return Err(SimError::BudgetExceeded {
                    kind: BudgetKind::Events,
                    limit: max_events,
                    at: clock,
                });
            }
            // Trace-shape checks run on every event regardless of
            // `check_invariants`: they are O(1) and they stand between a
            // corrupted trace and the heap's birth-order panic.
            if let Some(prev) = ledger.prev_birth {
                if birth <= prev {
                    return Err(SimError::Invariant {
                        at: birth,
                        violation: InvariantViolation::NonMonotoneTime { prev, next: birth },
                    });
                }
            }
            if let Some(death) = death {
                if death < birth {
                    return Err(SimError::Invariant {
                        at: birth,
                        violation: InvariantViolation::DeathBeforeBirth { birth, death },
                    });
                }
            }
            ledger.prev_birth = Some(birth);

            let size = Bytes::new(obj_size as u64);
            // Memory held its previous level while this object was being
            // allocated (the clock span equals the object's size).
            metrics.record_memory(heap.mem_in_use(), size);
            clock = birth;
            heap.insert(SimObject {
                birth,
                size: obj_size,
                death,
            });
            ledger.allocated += size;
            since_gc += size;
            since_sample += size;

            if config.record_curve && since_sample >= sample_every {
                since_sample = Bytes::ZERO;
                curve.push(CurvePoint {
                    at: clock,
                    mem: heap.mem_in_use(),
                    live: heap.live_bytes_at(clock),
                    boundary: None,
                });
            }

            let last_surviving = metrics.history().last().map(|r| r.surviving);
            if config
                .trigger
                .should_collect(since_gc, heap.mem_in_use(), last_surviving)
            {
                since_gc = Bytes::ZERO;
                // A scavenge records its own curve points; restart the
                // sample interval so the next between-scavenge sample
                // measures from here instead of firing immediately after
                // the collection.
                since_sample = Bytes::ZERO;
                scavenge_now(
                    &mut heap,
                    policy,
                    &mut metrics,
                    config,
                    &mut curve,
                    clock,
                    &mut ledger,
                )?;
            }

            // Checkpoint after the event is fully processed (including
            // any scavenge it triggered), so the saved state is always at
            // an event boundary. The modulus runs on the global event
            // count, so a resumed run keeps the original cadence.
            if let Some(path) = &control.checkpoint_path {
                if control.checkpoint_every > 0 && ledger.events % control.checkpoint_every == 0 {
                    let ckp = SimCheckpoint {
                        trace: source.meta().name.clone(),
                        policy: policy.name().to_string(),
                        config: *config,
                        events: ledger.events,
                        clock,
                        since_gc,
                        since_sample,
                        allocated: ledger.allocated,
                        reclaimed: ledger.reclaimed,
                        prev_birth: ledger.prev_birth,
                        heap: heap.snapshot(),
                        metrics: metrics.state(),
                        curve: curve.clone(),
                        policy_state: policy.save_state(),
                    };
                    save_checkpoint(path, &ckp)
                        .map_err(|source| SimError::Checkpoint { at: clock, source })?;
                }
            }
            idx += 1;
        }

        // A source failure is deferred behind the block's good records:
        // they are processed (advancing the clock) first, so the typed
        // error carries the same clock the per-record path would report.
        if let Some(source) = block.take_error() {
            return Err(SimError::Source { at: clock, source });
        }
    }

    // Account for the final memory level: it holds for whatever clock span
    // remains, and must register in the maximum even when none does
    // (zero-weight records update only the max). A corrupt store could
    // report an end before the last birth; treat that as a zero span
    // rather than tripping the clock's ordering assertion.
    let end = source.end();
    let tail = if end > clock {
        end.elapsed_since(clock)
    } else {
        Bytes::ZERO
    };
    metrics.record_memory(heap.mem_in_use(), tail);

    let meta = source.meta();
    Ok(SimRun {
        report: metrics.finish(policy.name(), meta.name.clone(), meta.exec_seconds),
        curve,
    })
}

/// Telemetry span covering one engine run: enters a run scope (so every
/// scavenge event is tagged with this run's id), emits
/// `RunStarted`/`RunFinished`, and resets the estimator counters so a
/// previous run on this thread cannot leak probes into ours. Does
/// nothing — not even an allocation — when no sink is installed.
struct ObsRunSpan {
    scope: Option<dtb_obs::RunScope>,
}

impl ObsRunSpan {
    fn begin(policy: &str, source: &str, threads: usize, block_events: usize) -> ObsRunSpan {
        if !dtb_obs::enabled() {
            return ObsRunSpan { scope: None };
        }
        let scope = dtb_obs::RunScope::enter(dtb_obs::next_run_id());
        let _ = dtb_core::obs::take_inverse_queries();
        dtb_obs::emit(|| dtb_obs::Event::RunStarted {
            policy: policy.to_string(),
            source: source.to_string(),
            threads: threads as u32,
            block_events: block_events as u64,
        });
        ObsRunSpan { scope: Some(scope) }
    }

    fn finish(self, result: &Result<SimRun, SimError>) {
        if self.scope.is_some() {
            dtb_obs::emit(|| dtb_obs::Event::RunFinished {
                collections: result
                    .as_ref()
                    .map(|run| run.report.collections as u64)
                    .unwrap_or(0),
                ok: result.is_ok(),
                inverse_probes: dtb_obs::run_probes(),
            });
        }
    }
}

/// Running totals the invariant checker reconciles against the heap.
#[derive(Default)]
pub(crate) struct Ledger {
    pub(crate) events: u64,
    pub(crate) allocated: Bytes,
    pub(crate) reclaimed: Bytes,
    pub(crate) prev_birth: Option<VirtualTime>,
}

/// One scavenge, policy decision included — shared verbatim by the serial
/// loop and the parallel drive ([`crate::par`]), which is what makes the
/// two bit-identical: same f64 operation order in the metrics, same error
/// construction, same invariant checks, same curve points.
#[allow(clippy::too_many_arguments)]
pub(crate) fn scavenge_now<H: SimHeap>(
    heap: &mut H,
    policy: &mut dyn TbPolicy,
    metrics: &mut MetricsCollector,
    config: &SimConfig,
    curve: &mut MemoryCurve,
    now: VirtualTime,
    ledger: &mut Ledger,
) -> Result<(), SimError> {
    let collection = metrics.history().len();
    if let Some(max) = config.budget.max_scavenges {
        if collection as u64 >= max {
            return Err(SimError::BudgetExceeded {
                kind: BudgetKind::Scavenges,
                limit: max,
                at: now,
            });
        }
    }
    let mem_before = heap.mem_in_use();
    // The survival view borrows the heap's indices, so it is scoped to
    // the policy call; afterwards the heap is free again for curve
    // queries and the scavenge itself. Constructing the view allocates
    // nothing (see `crates/sim/tests/zero_alloc.rs`).
    let tb = {
        let snapshot = heap.survival_view(now);
        let ctx = ScavengeContext {
            now,
            mem_before,
            history: metrics.history(),
            survival: &snapshot,
        };
        policy
            .select_boundary(&ctx)
            .map_err(|source| SimError::Policy {
                at: now,
                collection,
                source,
            })?
    };
    // Policies promise boundaries ≤ now (TB ∈ [0, t_{n-1}]). With checks
    // on, a future boundary is an invariant violation; otherwise clamp
    // defensively and carry on.
    if tb > now && config.check_invariants {
        return Err(SimError::Invariant {
            at: now,
            violation: InvariantViolation::BoundaryBeyondNow { boundary: tb, now },
        });
    }
    let tb = tb.min(now);
    if config.record_curve {
        curve.push(CurvePoint {
            at: now,
            mem: mem_before,
            live: heap.live_bytes_at(now),
            boundary: Some(tb),
        });
    }
    let outcome = heap.scavenge(tb, now);
    ledger.reclaimed += outcome.reclaimed;
    if config.check_invariants {
        if outcome.surviving + outcome.reclaimed != mem_before {
            return Err(SimError::Invariant {
                at: now,
                violation: InvariantViolation::ScavengeAccounting {
                    surviving: outcome.surviving,
                    reclaimed: outcome.reclaimed,
                    mem_before,
                },
            });
        }
        // Conservation: live + tenured garbage (= in use) + everything
        // reclaimed so far must equal everything allocated so far.
        if heap.mem_in_use() + ledger.reclaimed != ledger.allocated {
            return Err(SimError::Invariant {
                at: now,
                violation: InvariantViolation::ConservationBroken {
                    in_use: heap.mem_in_use(),
                    reclaimed: ledger.reclaimed,
                    allocated: ledger.allocated,
                },
            });
        }
    }
    metrics.record_scavenge(ScavengeRecord {
        at: now,
        boundary: tb,
        traced: outcome.traced,
        surviving: outcome.surviving,
        reclaimed: outcome.reclaimed,
        mem_before,
    });
    if dtb_core::obs::enabled() {
        // The scavenge span payload is engine-invariant: `collection`,
        // the trigger clock/event position, the outcome bytes, and the
        // inverse-query *call* count are all identical across the
        // per-event, block, and parallel engines (the determinism suite
        // pins this). The probe count is not — Fenwick descent vs
        // candidate scan — so it only feeds the run-level diagnostic.
        let (inverse_calls, inverse_probes) = dtb_core::obs::take_inverse_queries();
        dtb_obs::add_run_probes(inverse_probes);
        dtb_obs::emit(|| dtb_obs::Event::Scavenge {
            collection: collection as u64,
            at: now.as_u64(),
            boundary: tb.as_u64(),
            traced: outcome.traced.as_u64(),
            surviving: outcome.surviving.as_u64(),
            reclaimed: outcome.reclaimed.as_u64(),
            tenured: outcome.tenured_garbage.as_u64(),
            mem_before: mem_before.as_u64(),
            events: ledger.events,
            inverse_queries: inverse_calls,
        });
    }
    if config.record_curve {
        curve.push(CurvePoint {
            at: now,
            mem: heap.mem_in_use(),
            live: heap.live_bytes_at(now),
            boundary: Some(tb),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtb_core::error::PolicyError;
    use dtb_core::policy::{Fixed, Full, PolicyConfig, PolicyKind};
    use dtb_trace::TraceBuilder;

    /// 3 MB of 10 KB objects; even-indexed die immediately, odd live on.
    fn churn_trace() -> CompiledTrace {
        let mut b = TraceBuilder::new("churn");
        b.exec_seconds(1.0);
        for i in 0..300 {
            let id = b.alloc(10_000);
            if i % 2 == 0 {
                b.free(id);
            }
        }
        b.finish().compile().unwrap()
    }

    #[test]
    fn full_policy_reclaims_everything_each_scavenge() {
        let trace = churn_trace();
        let run = simulate(&trace, &mut Full::new(), &SimConfig::paper()).unwrap();
        assert_eq!(run.report.collections, 3);
        // After each full scavenge memory equals exactly the live bytes.
        for rec in run.report.history.iter() {
            assert_eq!(rec.boundary, VirtualTime::ZERO);
            let live = trace.live_bytes_at(rec.at);
            assert_eq!(rec.surviving, live, "at {:?}", rec.at);
        }
    }

    #[test]
    fn fixed1_leaves_tenured_garbage() {
        let trace = {
            // Objects that die *after* surviving one scavenge: lifetime
            // ~1.5 MB with 1 MB trigger.
            let mut b = TraceBuilder::new("tenure");
            b.exec_seconds(1.0);
            let mut pending: Vec<(usize, dtb_trace::ObjectId)> = Vec::new();
            for i in 0..300 {
                let id = b.alloc(10_000);
                pending.push((i, id));
                // Free objects allocated 150 steps (1.5 MB) ago.
                if let Some(pos) = pending.iter().position(|(j, _)| i >= j + 150) {
                    let (_, old) = pending.remove(pos);
                    b.free(old);
                }
            }
            b.finish().compile().unwrap()
        };
        let full = simulate(&trace, &mut Full::new(), &SimConfig::paper()).unwrap();
        let fixed1 = simulate(&trace, &mut Fixed::new(1), &SimConfig::paper()).unwrap();
        assert!(
            fixed1.report.mem_max > full.report.mem_max,
            "FIXED1 {:?} should exceed FULL {:?}",
            fixed1.report.mem_max,
            full.report.mem_max
        );
        // And FULL must trace more than FIXED1 overall.
        assert!(fixed1.report.total_traced < full.report.total_traced);
    }

    #[test]
    fn accounting_invariant_holds_for_every_policy() {
        let trace = churn_trace();
        let cfg = PolicyConfig::new(Bytes::new(30_000), Bytes::new(800_000));
        // Force the invariant checker on: every scavenge of every policy
        // must reconcile, whatever the build profile.
        let sim = SimConfig::paper().with_invariant_checks(true);
        for kind in PolicyKind::ALL {
            let mut policy = kind.build(&cfg);
            let run = simulate(&trace, &mut policy, &sim).unwrap();
            let mut reclaimed_total = Bytes::ZERO;
            for rec in run.report.history.iter() {
                assert!(rec.is_consistent(), "{kind}: inconsistent record");
                reclaimed_total += rec.reclaimed;
            }
            // Everything allocated is either reclaimed or still in memory
            // at the last scavenge... memory after last scavenge plus
            // allocation since then equals total.
            assert!(reclaimed_total <= trace.total_allocated());
        }
    }

    #[test]
    fn pause_times_proportional_to_traced() {
        let trace = churn_trace();
        let run = simulate(&trace, &mut Full::new(), &SimConfig::paper()).unwrap();
        for rec in run.report.history.iter() {
            let expect = rec.traced.as_u64() as f64 / 500_000.0 * 1000.0;
            let _ = expect; // median check below uses the same conversion
        }
        // Total traced at 500 KB/s over exec 1 s gives the overhead.
        let expect_overhead = run.report.total_traced.as_u64() as f64 / 500_000.0 / 1.0 * 100.0;
        assert!((run.report.overhead_pct - expect_overhead).abs() < 1e-9);
    }

    #[test]
    fn curve_recording_captures_scavenges() {
        let trace = churn_trace();
        let run = simulate(&trace, &mut Full::new(), &SimConfig::paper().with_curve()).unwrap();
        assert!(!run.curve.is_empty());
        // Each scavenge contributes a before and an after point.
        let scavenge_points = run
            .curve
            .points()
            .iter()
            .filter(|p| p.boundary.is_some())
            .count();
        assert_eq!(scavenge_points, run.report.collections * 2);
        // The drop at a scavenge shows memory being reclaimed.
        let before_after: Vec<_> = run
            .curve
            .points()
            .iter()
            .filter(|p| p.boundary.is_some())
            .collect();
        assert!(before_after[1].mem <= before_after[0].mem);
    }

    #[test]
    fn no_scavenge_under_trigger() {
        let mut b = TraceBuilder::new("small");
        b.alloc(500_000);
        let trace = b.finish().compile().unwrap();
        let run = simulate(&trace, &mut Full::new(), &SimConfig::paper()).unwrap();
        assert_eq!(run.report.collections, 0);
        assert_eq!(run.report.mem_max, Bytes::new(500_000));
    }

    #[test]
    fn corrupted_trace_is_a_typed_error_not_a_panic() {
        use dtb_trace::corrupt::{death_before_birth, reversed_births};
        let trace = churn_trace();

        let err = simulate(
            &reversed_births(&trace),
            &mut Full::new(),
            &SimConfig::paper(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            SimError::Invariant {
                violation: InvariantViolation::NonMonotoneTime { .. },
                ..
            }
        ));

        let err = simulate(
            &death_before_birth(&trace, 0),
            &mut Full::new(),
            &SimConfig::paper(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            SimError::Invariant {
                violation: InvariantViolation::DeathBeforeBirth { .. },
                ..
            }
        ));
    }

    #[test]
    fn event_budget_stops_a_run() {
        let trace = churn_trace();
        let sim = SimConfig::paper().with_budget(SimBudget::events(10));
        let err = simulate(&trace, &mut Full::new(), &sim).unwrap_err();
        assert_eq!(
            err,
            SimError::BudgetExceeded {
                kind: BudgetKind::Events,
                limit: 10,
                at: trace.life(9).birth,
            }
        );
    }

    #[test]
    fn scavenge_budget_stops_a_run() {
        let trace = churn_trace(); // 3 scavenges normally
        let sim = SimConfig::paper().with_budget(SimBudget::scavenges(1));
        let err = simulate(&trace, &mut Full::new(), &sim).unwrap_err();
        assert!(matches!(
            err,
            SimError::BudgetExceeded {
                kind: BudgetKind::Scavenges,
                limit: 1,
                ..
            }
        ));
        // A generous cap never fires.
        let sim = SimConfig::paper().with_budget(SimBudget::scavenges(100));
        assert!(simulate(&trace, &mut Full::new(), &sim).is_ok());
    }

    #[test]
    fn streaming_source_matches_in_memory_run() {
        use dtb_trace::CompiledSource;
        let trace = churn_trace();
        let cfg = SimConfig::paper().with_curve().with_invariant_checks(true);
        for kind in PolicyKind::ALL {
            let pc = PolicyConfig::new(Bytes::new(30_000), Bytes::new(800_000));
            let resident = simulate(&trace, &mut kind.build(&pc), &cfg).unwrap();
            let mut source = CompiledSource::new(&trace);
            let streamed = simulate_source(&mut source, &mut kind.build(&pc), &cfg).unwrap();
            assert_eq!(resident, streamed, "{kind}: streamed run diverged");
        }
    }

    #[test]
    fn invalid_trigger_is_a_typed_error() {
        let trace = churn_trace();
        let sim = SimConfig {
            trigger: Trigger::MemoryGrowth {
                factor: 0.5,
                min_allocation: Bytes::new(100),
            },
            ..SimConfig::paper()
        };
        let err = simulate(&trace, &mut Full::new(), &sim).unwrap_err();
        assert_eq!(
            err,
            SimError::Invariant {
                at: VirtualTime::ZERO,
                violation: InvariantViolation::InvalidTrigger { factor: 0.5 },
            }
        );
    }

    #[test]
    fn source_failure_is_reported_with_the_clock() {
        use dtb_trace::event::TraceMeta;
        use dtb_trace::{EventSource, ObjectLife, SourceError};

        /// Emits one good record, then fails.
        struct Flaky {
            meta: TraceMeta,
            emitted: bool,
        }
        impl EventSource for Flaky {
            fn meta(&self) -> &TraceMeta {
                &self.meta
            }
            fn next_record(&mut self) -> Result<Option<ObjectLife>, SourceError> {
                if self.emitted {
                    return Err(SourceError::Synth("disk fell off".into()));
                }
                self.emitted = true;
                Ok(Some(ObjectLife {
                    id: dtb_trace::ObjectId(0),
                    birth: VirtualTime::from_bytes(64),
                    size: 64,
                    death: None,
                }))
            }
            fn end(&self) -> VirtualTime {
                VirtualTime::from_bytes(64)
            }
        }

        let mut source = Flaky {
            meta: TraceMeta::named("flaky"),
            emitted: false,
        };
        let err = simulate_source(&mut source, &mut Full::new(), &SimConfig::paper()).unwrap_err();
        match err {
            SimError::Source { at, source } => {
                assert_eq!(at, VirtualTime::from_bytes(64));
                assert_eq!(source, SourceError::Synth("disk fell off".into()));
            }
            other => panic!("expected source error, got {other:?}"),
        }
    }

    #[test]
    fn failing_policy_is_reported_with_its_scavenge_index() {
        struct Sabotaged;
        impl TbPolicy for Sabotaged {
            fn select_boundary(
                &mut self,
                _ctx: &ScavengeContext<'_>,
            ) -> Result<VirtualTime, PolicyError> {
                Err(PolicyError::Internal {
                    policy: "SABOTAGED".into(),
                    reason: "always fails".into(),
                })
            }
            fn name(&self) -> &str {
                "SABOTAGED"
            }
        }
        let trace = churn_trace();
        let err = simulate(&trace, &mut Sabotaged, &SimConfig::paper()).unwrap_err();
        match err {
            SimError::Policy {
                collection, source, ..
            } => {
                assert_eq!(collection, 0);
                assert_eq!(source.policy(), "SABOTAGED");
            }
            other => panic!("expected policy error, got {other:?}"),
        }
    }

    #[test]
    fn future_boundary_is_an_invariant_violation_when_checked() {
        struct Clairvoyant;
        impl TbPolicy for Clairvoyant {
            fn select_boundary(
                &mut self,
                ctx: &ScavengeContext<'_>,
            ) -> Result<VirtualTime, PolicyError> {
                Ok(ctx.now.advance(Bytes::new(1_000_000)))
            }
            fn name(&self) -> &str {
                "CLAIRVOYANT"
            }
        }
        let trace = churn_trace();
        let checked = SimConfig::paper().with_invariant_checks(true);
        let err = simulate(&trace, &mut Clairvoyant, &checked).unwrap_err();
        assert!(matches!(
            err,
            SimError::Invariant {
                violation: InvariantViolation::BoundaryBeyondNow { .. },
                ..
            }
        ));
        // Unchecked builds clamp defensively instead and complete.
        let unchecked = SimConfig::paper().with_invariant_checks(false);
        let run = simulate(&trace, &mut Clairvoyant, &unchecked).unwrap();
        assert!(run.report.collections > 0);
    }
}
