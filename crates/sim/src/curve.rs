//! Memory-over-time curves (Figure 2).
//!
//! Figure 2 of the paper plots storage in use against execution time for a
//! full collector and a DTB collector, marking the threatening boundaries
//! chosen at each scavenge. [`MemoryCurve`] records exactly that series:
//! memory in use, true live bytes (the `L` curve), and — at scavenge
//! points — the boundary the policy chose.

use dtb_core::time::{Bytes, VirtualTime};
use serde::{Deserialize, Serialize};

/// One sample of the memory-over-time series.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Allocation-clock time of the sample.
    pub at: VirtualTime,
    /// Memory in use (live + unreclaimed garbage).
    pub mem: Bytes,
    /// True live bytes (the paper's `L` curve, from the oracle).
    pub live: Bytes,
    /// The threatening boundary, present on the before/after samples that
    /// bracket each scavenge.
    pub boundary: Option<VirtualTime>,
}

/// An ordered series of [`CurvePoint`]s.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MemoryCurve {
    points: Vec<CurvePoint>,
}

impl MemoryCurve {
    /// Creates an empty curve.
    pub fn new() -> MemoryCurve {
        MemoryCurve::default()
    }

    /// Appends a sample.
    pub fn push(&mut self, point: CurvePoint) {
        self.points.push(point);
    }

    /// The recorded samples, in clock order.
    pub fn points(&self) -> &[CurvePoint] {
        &self.points
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Writes the curve as CSV (`time,mem,live,boundary`) for plotting.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_csv<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(w, "time,mem,live,boundary")?;
        for p in &self.points {
            match p.boundary {
                Some(tb) => writeln!(
                    w,
                    "{},{},{},{}",
                    p.at.as_u64(),
                    p.mem.as_u64(),
                    p.live.as_u64(),
                    tb.as_u64()
                )?,
                None => writeln!(
                    w,
                    "{},{},{},",
                    p.at.as_u64(),
                    p.mem.as_u64(),
                    p.live.as_u64()
                )?,
            }
        }
        Ok(())
    }
}

impl FromIterator<CurvePoint> for MemoryCurve {
    fn from_iter<I: IntoIterator<Item = CurvePoint>>(iter: I) -> Self {
        MemoryCurve {
            points: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(at: u64, mem: u64, live: u64, tb: Option<u64>) -> CurvePoint {
        CurvePoint {
            at: VirtualTime::from_bytes(at),
            mem: Bytes::new(mem),
            live: Bytes::new(live),
            boundary: tb.map(VirtualTime::from_bytes),
        }
    }

    #[test]
    fn csv_format_includes_boundaries() {
        let curve: MemoryCurve = [pt(10, 100, 80, None), pt(20, 120, 90, Some(5))]
            .into_iter()
            .collect();
        let mut out = Vec::new();
        curve.write_csv(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text, "time,mem,live,boundary\n10,100,80,\n20,120,90,5\n");
    }

    #[test]
    fn push_and_len() {
        let mut c = MemoryCurve::new();
        assert!(c.is_empty());
        c.push(pt(1, 2, 3, None));
        assert_eq!(c.len(), 1);
        assert_eq!(c.points()[0].mem, Bytes::new(2));
    }
}
