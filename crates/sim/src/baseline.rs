//! The `No GC` and `LIVE` baseline rows of Table 2.
//!
//! These are not collectors: `No GC` is the memory a program would use if
//! nothing were ever reclaimed (the allocation ramp itself), and `LIVE` is
//! the exact reachable storage over time — the floor no collector can beat.

use crate::metrics::SimReport;
use dtb_core::history::ScavengeHistory;
use dtb_core::policy::Row;
use dtb_core::time::Bytes;
use dtb_trace::event::CompiledTrace;
use dtb_trace::stats::TraceStats;
use dtb_trace::{EventSource, SourceError};

/// Builds a baseline row (no pauses, no tracing, no collections) from
/// precomputed trace statistics. The two baseline rows differ only in
/// which memory profile they read off the stats.
fn report_from_stats(row: Row, stats: &TraceStats) -> SimReport {
    let (mem_mean, mem_max) = match row {
        Row::NoGc => (stats.nogc_mean, stats.nogc_max),
        _ => (stats.live_mean, stats.live_max),
    };
    SimReport {
        policy: row,
        program: stats.name.clone(),
        mem_mean,
        mem_max,
        pause_median_ms: 0.0,
        pause_p90_ms: 0.0,
        total_traced: Bytes::ZERO,
        overhead_pct: 0.0,
        collections: 0,
        history: ScavengeHistory::new(),
    }
}

/// The `No GC` row: memory usage with the collector disabled.
///
/// Memory equals the allocation clock, so the mean is half the total (the
/// ramp average) and the max is the total allocation. There are no pauses
/// and no tracing.
pub fn no_gc_report(trace: &CompiledTrace) -> SimReport {
    report_from_stats(Row::NoGc, &TraceStats::compute_compiled(trace))
}

/// The `LIVE` row: exact reachable bytes over time.
///
/// The unreachable floor: a collector with a perfect, free oracle would
/// hold memory at this curve.
pub fn live_report(trace: &CompiledTrace) -> SimReport {
    report_from_stats(Row::Live, &TraceStats::compute_compiled(trace))
}

/// [`no_gc_report`] over a streaming [`EventSource`]: bit-identical to
/// the in-memory row (see [`TraceStats::compute_source`]) without ever
/// materializing the trace.
///
/// # Errors
///
/// Propagates the source's own failure (I/O, corruption, generator
/// fault).
pub fn no_gc_report_source(
    source: &mut (impl EventSource + ?Sized),
) -> Result<SimReport, SourceError> {
    Ok(report_from_stats(
        Row::NoGc,
        &TraceStats::compute_source(source)?,
    ))
}

/// [`live_report`] over a streaming [`EventSource`]; see
/// [`no_gc_report_source`].
///
/// # Errors
///
/// Propagates the source's own failure (I/O, corruption, generator
/// fault).
pub fn live_report_source(
    source: &mut (impl EventSource + ?Sized),
) -> Result<SimReport, SourceError> {
    Ok(report_from_stats(
        Row::Live,
        &TraceStats::compute_source(source)?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtb_trace::TraceBuilder;

    #[test]
    fn baselines_bracket_collector_memory() {
        let mut b = TraceBuilder::new("base");
        for _ in 0..50 {
            let id = b.alloc(10_000);
            b.free(id);
        }
        b.alloc(10_000); // one object stays live
        let trace = b.finish().compile().unwrap();
        let nogc = no_gc_report(&trace);
        let live = live_report(&trace);
        assert_eq!(nogc.mem_max, Bytes::new(510_000));
        assert_eq!(nogc.mem_mean, Bytes::new(255_000));
        assert!(live.mem_max <= nogc.mem_max);
        assert!(live.mem_mean <= nogc.mem_mean);
        // Churn objects die at their own birth instant, so the live level
        // never stacks two of them; only the final survivor counts.
        assert_eq!(live.mem_max, Bytes::new(10_000));
        assert_eq!(nogc.collections, 0);
        assert_eq!(live.total_traced, Bytes::ZERO);
    }

    #[test]
    fn streaming_baselines_match_in_memory() {
        use dtb_trace::CompiledSource;
        let mut b = TraceBuilder::new("base-stream");
        for i in 0..200u32 {
            let id = b.alloc(1_000 + i);
            if i % 3 != 0 {
                b.free(id);
            }
        }
        let trace = b.finish().compile().unwrap();
        let mut s = CompiledSource::new(&trace);
        assert_eq!(no_gc_report_source(&mut s).unwrap(), no_gc_report(&trace));
        let mut s = CompiledSource::new(&trace);
        assert_eq!(live_report_source(&mut s).unwrap(), live_report(&trace));
    }
}
