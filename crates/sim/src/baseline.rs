//! The `No GC` and `LIVE` baseline rows of Table 2.
//!
//! These are not collectors: `No GC` is the memory a program would use if
//! nothing were ever reclaimed (the allocation ramp itself), and `LIVE` is
//! the exact reachable storage over time — the floor no collector can beat.

use crate::metrics::SimReport;
use dtb_core::history::ScavengeHistory;
use dtb_core::policy::Row;
use dtb_core::time::Bytes;
use dtb_trace::event::CompiledTrace;
use dtb_trace::stats::TraceStats;

/// The `No GC` row: memory usage with the collector disabled.
///
/// Memory equals the allocation clock, so the mean is half the total (the
/// ramp average) and the max is the total allocation. There are no pauses
/// and no tracing.
pub fn no_gc_report(trace: &CompiledTrace) -> SimReport {
    let stats = TraceStats::compute_compiled(trace);
    SimReport {
        policy: Row::NoGc,
        program: trace.meta.name.clone(),
        mem_mean: stats.nogc_mean,
        mem_max: stats.nogc_max,
        pause_median_ms: 0.0,
        pause_p90_ms: 0.0,
        total_traced: Bytes::ZERO,
        overhead_pct: 0.0,
        collections: 0,
        history: ScavengeHistory::new(),
    }
}

/// The `LIVE` row: exact reachable bytes over time.
///
/// The unreachable floor: a collector with a perfect, free oracle would
/// hold memory at this curve.
pub fn live_report(trace: &CompiledTrace) -> SimReport {
    let stats = TraceStats::compute_compiled(trace);
    SimReport {
        policy: Row::Live,
        program: trace.meta.name.clone(),
        mem_mean: stats.live_mean,
        mem_max: stats.live_max,
        pause_median_ms: 0.0,
        pause_p90_ms: 0.0,
        total_traced: Bytes::ZERO,
        overhead_pct: 0.0,
        collections: 0,
        history: ScavengeHistory::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtb_trace::TraceBuilder;

    #[test]
    fn baselines_bracket_collector_memory() {
        let mut b = TraceBuilder::new("base");
        for _ in 0..50 {
            let id = b.alloc(10_000);
            b.free(id);
        }
        b.alloc(10_000); // one object stays live
        let trace = b.finish().compile().unwrap();
        let nogc = no_gc_report(&trace);
        let live = live_report(&trace);
        assert_eq!(nogc.mem_max, Bytes::new(510_000));
        assert_eq!(nogc.mem_mean, Bytes::new(255_000));
        assert!(live.mem_max <= nogc.mem_max);
        assert!(live.mem_mean <= nogc.mem_mean);
        // Churn objects die at their own birth instant, so the live level
        // never stacks two of them; only the final survivor counts.
        assert_eq!(live.mem_max, Bytes::new(10_000));
        assert_eq!(nogc.collections, 0);
        assert_eq!(live.total_traced, Bytes::ZERO);
    }
}
