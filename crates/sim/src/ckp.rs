//! Mid-run simulation checkpoints.
//!
//! A [`SimCheckpoint`] is the complete resumable state of one
//! `(program × policy)` simulation: where the clock stands, what still
//! occupies the heap, every metric accumulated so far, and any state the
//! boundary policy carries. The engine emits one every
//! [`RunControl::checkpoint_every`](crate::engine::RunControl) events;
//! [`load_checkpoint`] plus a [`Sim`](crate::engine::Sim) run under
//! [`RunControl::resuming`](crate::engine::RunControl::resuming)
//! continue the run to a **bit-identical** [`SimRun`](crate::engine::SimRun)
//! — reports, histories, and curves — as if it had never stopped (the
//! resume differential suite proves this for all six policies over both
//! in-memory and sharded sources).
//!
//! On disk a checkpoint is a JSON payload inside the checksummed
//! `DTBCKP01` container ([`dtb_trace::ckp`]): atomic replace on write,
//! and a typed [`CkpError`] — never a panic, never silent corruption —
//! on damaged or mismatched files.

use crate::curve::MemoryCurve;
use crate::engine::SimConfig;
use crate::heap::HeapSnapshot;
use crate::metrics::MetricsState;
use dtb_core::time::{Bytes, VirtualTime};
pub use dtb_trace::ckp::CkpError;
use dtb_trace::ckp::{read_blob, write_blob};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// The complete resumable state of one simulation, as of the instant the
/// event that `events` counts was fully processed (including any
/// scavenge it triggered).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimCheckpoint {
    /// Name of the trace being simulated (guards against resuming on the
    /// wrong source).
    pub trace: String,
    /// `name()` of the policy (guards against resuming the wrong
    /// collector).
    pub policy: String,
    /// The configuration the run started under. On resume the *physics*
    /// (trigger, cost model, curve recording) must match; budget and
    /// invariant checking may differ — interrupting a budgeted run and
    /// resuming it without the budget is a supported workflow.
    pub config: SimConfig,
    /// Events processed so far.
    pub events: u64,
    /// Allocation clock: birth time of the last processed event.
    pub clock: VirtualTime,
    /// Bytes allocated since the last scavenge (trigger accumulator).
    pub since_gc: Bytes,
    /// Bytes allocated since the last curve sample.
    pub since_sample: Bytes,
    /// Total bytes allocated so far (conservation ledger).
    pub allocated: Bytes,
    /// Total bytes reclaimed so far (conservation ledger).
    pub reclaimed: Bytes,
    /// Birth of the last processed event, for the monotonicity check on
    /// the first resumed event. `None` only before any event.
    pub prev_birth: Option<VirtualTime>,
    /// The heap's resident objects and lazy clock.
    pub heap: HeapSnapshot,
    /// Accumulated measurements.
    pub metrics: MetricsState,
    /// The memory-over-time curve recorded so far (empty unless
    /// [`SimConfig::record_curve`] is set).
    pub curve: MemoryCurve,
    /// Opaque policy state from
    /// [`TbPolicy::save_state`](dtb_core::policy::TbPolicy::save_state);
    /// empty for the paper's six stateless collectors.
    pub policy_state: Vec<u8>,
}

/// Atomically writes `ckp` to `path` in the `DTBCKP01` container.
///
/// # Errors
///
/// [`CkpError::Io`] on filesystem failure.
pub fn save_checkpoint(path: impl AsRef<Path>, ckp: &SimCheckpoint) -> Result<(), CkpError> {
    let path = path.as_ref();
    let json = serde_json::to_string(ckp).map_err(|e| CkpError::BadPayload {
        path: path.to_path_buf(),
        reason: format!("cannot encode checkpoint: {e}"),
    })?;
    write_blob(path, json.as_bytes())
}

/// Reads, verifies, and decodes a checkpoint from `path`.
///
/// # Errors
///
/// Container damage surfaces as [`CkpError::Io`] /
/// [`CkpError::Truncated`] / [`CkpError::BadMagic`] /
/// [`CkpError::ChecksumMismatch`]; a payload that verifies but does not
/// decode to a [`SimCheckpoint`] is [`CkpError::BadPayload`].
pub fn load_checkpoint(path: impl AsRef<Path>) -> Result<SimCheckpoint, CkpError> {
    let path = path.as_ref();
    let payload = read_blob(path)?;
    let json = String::from_utf8(payload).map_err(|e| CkpError::BadPayload {
        path: path.to_path_buf(),
        reason: format!("payload is not UTF-8: {e}"),
    })?;
    serde_json::from_str(&json).map_err(|e| CkpError::BadPayload {
        path: path.to_path_buf(),
        reason: format!("cannot decode checkpoint: {e}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::SimObject;
    use crate::metrics::MetricsCollector;
    use dtb_core::cost::CostModel;
    use dtb_core::history::ScavengeRecord;
    use std::path::PathBuf;

    fn temp_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dtb-sim-ckp-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("cell.dtbckp")
    }

    fn sample_checkpoint() -> SimCheckpoint {
        let mut metrics = MetricsCollector::new(CostModel::paper());
        metrics.record_memory(Bytes::new(123_456), Bytes::new(1_000));
        metrics.record_scavenge(ScavengeRecord {
            at: VirtualTime::from_bytes(1_000_000),
            boundary: VirtualTime::ZERO,
            traced: Bytes::new(120_000),
            surviving: Bytes::new(120_000),
            reclaimed: Bytes::new(880_000),
            mem_before: Bytes::new(1_000_000),
        });
        SimCheckpoint {
            trace: "CFRAC".into(),
            policy: "DTBFM".into(),
            config: SimConfig::paper().with_curve(),
            events: 4_242,
            clock: VirtualTime::from_bytes(1_234_567),
            since_gc: Bytes::new(234_567),
            since_sample: Bytes::new(17),
            allocated: Bytes::new(1_234_567),
            reclaimed: Bytes::new(880_000),
            prev_birth: Some(VirtualTime::from_bytes(1_234_567)),
            heap: HeapSnapshot {
                objects: vec![
                    SimObject {
                        birth: VirtualTime::from_bytes(100),
                        size: 64,
                        death: None,
                    },
                    SimObject {
                        birth: VirtualTime::from_bytes(200),
                        size: 32,
                        death: Some(VirtualTime::from_bytes(900_000)),
                    },
                ],
                clock: VirtualTime::from_bytes(1_234_567),
            },
            metrics: metrics.state(),
            curve: MemoryCurve::new(),
            policy_state: vec![1, 2, 3],
        }
    }

    #[test]
    fn checkpoint_round_trips_exactly() {
        let path = temp_path("rt");
        let ckp = sample_checkpoint();
        save_checkpoint(&path, &ckp).unwrap();
        assert_eq!(load_checkpoint(&path).unwrap(), ckp);
    }

    #[test]
    fn container_damage_is_typed() {
        let path = temp_path("dmg");
        save_checkpoint(&path, &sample_checkpoint()).unwrap();
        let mut raw = std::fs::read(&path).unwrap();
        let mid = raw.len() / 2;
        raw[mid] ^= 0x04;
        std::fs::write(&path, raw).unwrap();
        assert!(matches!(
            load_checkpoint(&path).unwrap_err(),
            CkpError::ChecksumMismatch { .. }
        ));
    }

    #[test]
    fn valid_container_with_garbage_payload_is_bad_payload() {
        let path = temp_path("payload");
        write_blob(&path, b"{\"not\": \"a checkpoint\"}").unwrap();
        let err = load_checkpoint(&path).unwrap_err();
        assert!(matches!(err, CkpError::BadPayload { .. }), "{err}");
        assert!(err.to_string().contains("cannot decode"), "{err}");
    }
}
