//! Adversarial boundary policies for fault-injection testing.
//!
//! Each policy here misbehaves in one specific, deterministic way —
//! returning a non-finite boundary, a boundary in the future, failing or
//! panicking after a set number of scavenges — so the harness can assert
//! that the framework contains exactly that fault: the offending cell
//! fails with the right typed error (or caught panic) and every healthy
//! cell is untouched.
//!
//! They pair with the trace corruptors in [`dtb_trace::corrupt`]: those
//! attack the engine's *input*, these attack its *policy* extension point.

use dtb_core::error::{boundary_from_f64, PolicyError};
use dtb_core::policy::{ScavengeContext, TbPolicy};
use dtb_core::time::{Bytes, VirtualTime};

/// Always proposes a NaN boundary. The framework's float→clock gate
/// ([`boundary_from_f64`]) rejects it as
/// [`PolicyError::NonFiniteBoundary`].
#[derive(Clone, Copy, Debug, Default)]
pub struct NanBoundary;

impl TbPolicy for NanBoundary {
    fn select_boundary(&mut self, _ctx: &ScavengeContext<'_>) -> Result<VirtualTime, PolicyError> {
        boundary_from_f64(self.name(), f64::NAN)
    }

    fn name(&self) -> &str {
        "FAULT-NAN"
    }
}

/// Always proposes `+∞`, rejected the same way as NaN.
#[derive(Clone, Copy, Debug, Default)]
pub struct InfiniteBoundary;

impl TbPolicy for InfiniteBoundary {
    fn select_boundary(&mut self, _ctx: &ScavengeContext<'_>) -> Result<VirtualTime, PolicyError> {
        boundary_from_f64(self.name(), f64::INFINITY)
    }

    fn name(&self) -> &str {
        "FAULT-INF"
    }
}

/// Returns a boundary **past the allocation clock** — out of the legal
/// `[0, t_{n-1}]` range. With invariant checks on the engine reports
/// `BoundaryBeyondNow`; with checks off it clamps defensively.
#[derive(Clone, Copy, Debug, Default)]
pub struct FutureBoundary;

impl TbPolicy for FutureBoundary {
    fn select_boundary(&mut self, ctx: &ScavengeContext<'_>) -> Result<VirtualTime, PolicyError> {
        Ok(ctx.now.advance(Bytes::from_mb(1)))
    }

    fn name(&self) -> &str {
        "FAULT-FUTURE"
    }
}

/// Behaves like `FULL` for `n` scavenges, then panics.
///
/// Exercises the executor's per-cell `catch_unwind` isolation: the panic
/// must be contained to the cell and reported as a caught panic.
#[derive(Clone, Copy, Debug)]
pub struct PanicAfter {
    remaining: u64,
}

impl PanicAfter {
    /// Panics on the `n+1`-th scavenge decision (so `PanicAfter::new(0)`
    /// panics immediately).
    pub fn new(n: u64) -> PanicAfter {
        PanicAfter { remaining: n }
    }
}

impl TbPolicy for PanicAfter {
    fn select_boundary(&mut self, _ctx: &ScavengeContext<'_>) -> Result<VirtualTime, PolicyError> {
        if self.remaining == 0 {
            panic!("injected policy panic");
        }
        self.remaining -= 1;
        Ok(VirtualTime::ZERO)
    }

    fn name(&self) -> &str {
        "FAULT-PANIC"
    }
}

/// Behaves like `FULL` for `n` scavenges, then returns a typed
/// [`PolicyError::Internal`].
#[derive(Clone, Copy, Debug)]
pub struct FailAfter {
    remaining: u64,
}

impl FailAfter {
    /// Fails on the `n+1`-th scavenge decision.
    pub fn new(n: u64) -> FailAfter {
        FailAfter { remaining: n }
    }
}

impl TbPolicy for FailAfter {
    fn select_boundary(&mut self, _ctx: &ScavengeContext<'_>) -> Result<VirtualTime, PolicyError> {
        if self.remaining == 0 {
            return Err(PolicyError::Internal {
                policy: self.name().to_string(),
                reason: "injected failure".to_string(),
            });
        }
        self.remaining -= 1;
        Ok(VirtualTime::ZERO)
    }

    fn name(&self) -> &str {
        "FAULT-FAIL"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtb_core::history::ScavengeHistory;
    use dtb_core::policy::NoSurvivalInfo;

    fn ctx(history: &ScavengeHistory) -> ScavengeContext<'_> {
        ScavengeContext {
            now: VirtualTime::from_bytes(1_000),
            mem_before: Bytes::new(500),
            history,
            survival: &NoSurvivalInfo,
        }
    }

    #[test]
    fn float_faults_yield_typed_policy_errors() {
        let h = ScavengeHistory::new();
        let ctx = ctx(&h);
        assert!(matches!(
            NanBoundary.select_boundary(&ctx),
            Err(PolicyError::NonFiniteBoundary { .. })
        ));
        assert!(matches!(
            InfiniteBoundary.select_boundary(&ctx),
            Err(PolicyError::NonFiniteBoundary { .. })
        ));
    }

    #[test]
    fn future_boundary_exceeds_now() {
        let h = ScavengeHistory::new();
        let ctx = ctx(&h);
        let tb = FutureBoundary.select_boundary(&ctx).unwrap();
        assert!(tb > ctx.now);
    }

    #[test]
    fn countdown_policies_hold_then_fire() {
        let h = ScavengeHistory::new();
        let ctx = ctx(&h);
        let mut fail = FailAfter::new(2);
        assert!(fail.select_boundary(&ctx).is_ok());
        assert!(fail.select_boundary(&ctx).is_ok());
        assert!(matches!(
            fail.select_boundary(&ctx),
            Err(PolicyError::Internal { .. })
        ));

        let mut boom = PanicAfter::new(1);
        assert!(boom.select_boundary(&ctx).is_ok());
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = boom.select_boundary(&ctx);
        }));
        assert!(caught.is_err());
    }
}
