//! Adversarial boundary policies for fault-injection testing.
//!
//! Each policy here misbehaves in one specific, deterministic way —
//! returning a non-finite boundary, a boundary in the future, failing or
//! panicking after a set number of scavenges — so the harness can assert
//! that the framework contains exactly that fault: the offending cell
//! fails with the right typed error (or caught panic) and every healthy
//! cell is untouched.
//!
//! They pair with the trace corruptors in [`dtb_trace::corrupt`]: those
//! attack the engine's *input*, these attack its *policy* extension point.

use dtb_core::error::{boundary_from_f64, PolicyError};
use dtb_core::policy::{ScavengeContext, TbPolicy};
use dtb_core::time::{Bytes, VirtualTime};
use dtb_trace::ctc::CtcError;
use dtb_trace::{EventSource, ObjectLife, SourceError, TraceMeta};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Always proposes a NaN boundary. The framework's float→clock gate
/// ([`boundary_from_f64`]) rejects it as
/// [`PolicyError::NonFiniteBoundary`].
#[derive(Clone, Copy, Debug, Default)]
pub struct NanBoundary;

impl TbPolicy for NanBoundary {
    fn select_boundary(&mut self, _ctx: &ScavengeContext<'_>) -> Result<VirtualTime, PolicyError> {
        boundary_from_f64(self.name(), f64::NAN)
    }

    fn name(&self) -> &str {
        "FAULT-NAN"
    }
}

/// Always proposes `+∞`, rejected the same way as NaN.
#[derive(Clone, Copy, Debug, Default)]
pub struct InfiniteBoundary;

impl TbPolicy for InfiniteBoundary {
    fn select_boundary(&mut self, _ctx: &ScavengeContext<'_>) -> Result<VirtualTime, PolicyError> {
        boundary_from_f64(self.name(), f64::INFINITY)
    }

    fn name(&self) -> &str {
        "FAULT-INF"
    }
}

/// Returns a boundary **past the allocation clock** — out of the legal
/// `[0, t_{n-1}]` range. With invariant checks on the engine reports
/// `BoundaryBeyondNow`; with checks off it clamps defensively.
#[derive(Clone, Copy, Debug, Default)]
pub struct FutureBoundary;

impl TbPolicy for FutureBoundary {
    fn select_boundary(&mut self, ctx: &ScavengeContext<'_>) -> Result<VirtualTime, PolicyError> {
        Ok(ctx.now.advance(Bytes::from_mb(1)))
    }

    fn name(&self) -> &str {
        "FAULT-FUTURE"
    }
}

/// Behaves like `FULL` for `n` scavenges, then panics.
///
/// Exercises the executor's per-cell `catch_unwind` isolation: the panic
/// must be contained to the cell and reported as a caught panic.
#[derive(Clone, Copy, Debug)]
pub struct PanicAfter {
    remaining: u64,
}

impl PanicAfter {
    /// Panics on the `n+1`-th scavenge decision (so `PanicAfter::new(0)`
    /// panics immediately).
    pub fn new(n: u64) -> PanicAfter {
        PanicAfter { remaining: n }
    }
}

impl TbPolicy for PanicAfter {
    fn select_boundary(&mut self, _ctx: &ScavengeContext<'_>) -> Result<VirtualTime, PolicyError> {
        if self.remaining == 0 {
            panic!("injected policy panic");
        }
        self.remaining -= 1;
        Ok(VirtualTime::ZERO)
    }

    fn name(&self) -> &str {
        "FAULT-PANIC"
    }
}

/// Behaves like `FULL` for `n` scavenges, then returns a typed
/// [`PolicyError::Internal`].
#[derive(Clone, Copy, Debug)]
pub struct FailAfter {
    remaining: u64,
}

impl FailAfter {
    /// Fails on the `n+1`-th scavenge decision.
    pub fn new(n: u64) -> FailAfter {
        FailAfter { remaining: n }
    }
}

impl TbPolicy for FailAfter {
    fn select_boundary(&mut self, _ctx: &ScavengeContext<'_>) -> Result<VirtualTime, PolicyError> {
        if self.remaining == 0 {
            return Err(PolicyError::Internal {
                policy: self.name().to_string(),
                reason: "injected failure".to_string(),
            });
        }
        self.remaining -= 1;
        Ok(VirtualTime::ZERO)
    }

    fn name(&self) -> &str {
        "FAULT-FAIL"
    }
}

/// Wraps an [`EventSource`], sleeping `delay` before every record past
/// the first `n` — a deterministic stand-in for a backing store gone
/// slow (cold cache, struggling network mount). The engine polls its
/// cancel flag between events, so a cell stalled on a `SlowAfter`
/// source is cancelled by the executor's deadline watchdog at the next
/// record boundary.
#[derive(Debug)]
pub struct SlowAfter<S> {
    inner: S,
    after: u64,
    delay: Duration,
    served: u64,
}

impl<S> SlowAfter<S> {
    /// Delays every record after the first `after` by `delay`
    /// (`after == 0` slows the stream from the very first record).
    pub fn new(inner: S, after: u64, delay: Duration) -> SlowAfter<S> {
        SlowAfter {
            inner,
            after,
            delay,
            served: 0,
        }
    }
}

impl<S: EventSource> EventSource for SlowAfter<S> {
    fn meta(&self) -> &TraceMeta {
        self.inner.meta()
    }

    fn len_hint(&self) -> Option<usize> {
        self.inner.len_hint()
    }

    fn next_record(&mut self) -> Result<Option<ObjectLife>, SourceError> {
        if self.served >= self.after && !self.delay.is_zero() {
            std::thread::sleep(self.delay);
        }
        self.served += 1;
        self.inner.next_record()
    }

    fn end(&self) -> VirtualTime {
        self.inner.end()
    }

    fn seek(&mut self, clock: VirtualTime) -> Result<(), SourceError> {
        self.inner.seek(clock)
    }
}

/// Wraps an [`EventSource`], failing `next_record` with a **transient**
/// shard I/O error while the shared fuse holds charges.
///
/// The fuse ([`FlakyStore::fuse`]) is decremented across every source
/// built from it — clone the `Arc` into a source factory and the first
/// `fuse` reads *of the whole cell*, retries included, fail; the retry
/// that finds the fuse empty streams normally. That is exactly the shape
/// of a store that recovers after a hiccup, and the executor's retry
/// classification treats it as such
/// ([`FailureCause::is_transient`](crate::exec::FailureCause::is_transient)).
#[derive(Debug)]
pub struct FlakyStore<S> {
    inner: S,
    fuse: Arc<AtomicU32>,
}

impl<S> FlakyStore<S> {
    /// Wraps `inner`; each `next_record` consumes one charge from `fuse`
    /// and fails until it is empty.
    pub fn new(inner: S, fuse: Arc<AtomicU32>) -> FlakyStore<S> {
        FlakyStore { inner, fuse }
    }

    /// A fuse holding `charges` failures, to share across a factory.
    pub fn fuse(charges: u32) -> Arc<AtomicU32> {
        Arc::new(AtomicU32::new(charges))
    }
}

impl<S: EventSource> EventSource for FlakyStore<S> {
    fn meta(&self) -> &TraceMeta {
        self.inner.meta()
    }

    fn len_hint(&self) -> Option<usize> {
        self.inner.len_hint()
    }

    fn next_record(&mut self) -> Result<Option<ObjectLife>, SourceError> {
        let tripped = self
            .fuse
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
            .is_ok();
        if tripped {
            return Err(SourceError::Shard(CtcError::Io {
                path: std::path::PathBuf::from(self.meta().name.clone()),
                message: "injected transient i/o fault".to_string(),
            }));
        }
        self.inner.next_record()
    }

    fn end(&self) -> VirtualTime {
        self.inner.end()
    }

    fn seek(&mut self, clock: VirtualTime) -> Result<(), SourceError> {
        self.inner.seek(clock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtb_core::history::ScavengeHistory;
    use dtb_core::policy::NoSurvivalInfo;

    fn ctx(history: &ScavengeHistory) -> ScavengeContext<'_> {
        ScavengeContext {
            now: VirtualTime::from_bytes(1_000),
            mem_before: Bytes::new(500),
            history,
            survival: &NoSurvivalInfo,
        }
    }

    #[test]
    fn float_faults_yield_typed_policy_errors() {
        let h = ScavengeHistory::new();
        let ctx = ctx(&h);
        assert!(matches!(
            NanBoundary.select_boundary(&ctx),
            Err(PolicyError::NonFiniteBoundary { .. })
        ));
        assert!(matches!(
            InfiniteBoundary.select_boundary(&ctx),
            Err(PolicyError::NonFiniteBoundary { .. })
        ));
    }

    #[test]
    fn future_boundary_exceeds_now() {
        let h = ScavengeHistory::new();
        let ctx = ctx(&h);
        let tb = FutureBoundary.select_boundary(&ctx).unwrap();
        assert!(tb > ctx.now);
    }

    #[test]
    fn countdown_policies_hold_then_fire() {
        let h = ScavengeHistory::new();
        let ctx = ctx(&h);
        let mut fail = FailAfter::new(2);
        assert!(fail.select_boundary(&ctx).is_ok());
        assert!(fail.select_boundary(&ctx).is_ok());
        assert!(matches!(
            fail.select_boundary(&ctx),
            Err(PolicyError::Internal { .. })
        ));

        let mut boom = PanicAfter::new(1);
        assert!(boom.select_boundary(&ctx).is_ok());
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = boom.select_boundary(&ctx);
        }));
        assert!(caught.is_err());
    }

    fn tiny_source() -> dtb_trace::CompiledSource<'static> {
        use std::sync::OnceLock;
        static TRACE: OnceLock<dtb_trace::event::CompiledTrace> = OnceLock::new();
        let trace = TRACE.get_or_init(|| {
            let mut b = dtb_trace::TraceBuilder::new("tiny");
            b.alloc(64);
            b.alloc(32);
            b.alloc(16);
            b.finish().compile().unwrap()
        });
        dtb_trace::CompiledSource::new(trace)
    }

    #[test]
    fn slow_after_passes_records_through_unchanged() {
        let mut slow = SlowAfter::new(tiny_source(), 2, Duration::from_millis(1));
        let mut plain = tiny_source();
        assert_eq!(slow.meta().name, "tiny");
        assert_eq!(slow.len_hint(), plain.len_hint());
        assert_eq!(slow.end(), plain.end());
        loop {
            let a = slow.next_record().unwrap();
            let b = plain.next_record().unwrap();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn flaky_store_fails_transiently_then_recovers() {
        let fuse = FlakyStore::<dtb_trace::CompiledSource<'_>>::fuse(2);
        let mut flaky = FlakyStore::new(tiny_source(), fuse.clone());
        for _ in 0..2 {
            assert!(matches!(
                flaky.next_record(),
                Err(SourceError::Shard(CtcError::Io { .. }))
            ));
        }
        // Fuse spent: the stream recovers, and a *new* source on the
        // same fuse starts healthy (the charges are shared, not
        // per-instance).
        assert!(flaky.next_record().unwrap().is_some());
        let mut second = FlakyStore::new(tiny_source(), fuse);
        assert!(second.next_record().unwrap().is_some());
    }
}
