//! The oracle heap: the simulated collector's view of storage.
//!
//! The heap holds every object that has been allocated and not yet
//! *reclaimed*. Because this is a garbage-collected world, a `Free` event
//! in the trace does not release memory — it only records the moment the
//! object became unreachable (the lifetime oracle). Memory in use only
//! drops when a scavenge reclaims unreachable threatened objects.
//!
//! Objects are stored in birth order (births are strictly increasing along
//! the trace), so boundary queries are a partition point plus a tail scan,
//! and tenured garbage is exactly the dead objects sitting at or before
//! the boundary.

use dtb_core::policy::SurvivalEstimator;
use dtb_core::time::{Bytes, VirtualTime};

/// One object in the oracle heap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimObject {
    /// Birth time on the allocation clock.
    pub birth: VirtualTime,
    /// Size in bytes.
    pub size: u32,
    /// Oracle death time; `None` = lives to the end of the trace.
    pub death: Option<VirtualTime>,
}

impl SimObject {
    /// True when the object is reachable at time `at`.
    pub fn is_live_at(&self, at: VirtualTime) -> bool {
        self.death.is_none_or(|d| d > at)
    }
}

/// The outcome of one scavenge over the oracle heap.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScavengeOutcome {
    /// Bytes of reachable threatened storage traced.
    pub traced: Bytes,
    /// Bytes of unreachable threatened storage reclaimed.
    pub reclaimed: Bytes,
    /// Bytes surviving (everything immune + live threatened).
    pub surviving: Bytes,
    /// Bytes of *tenured garbage* left behind: dead objects protected by
    /// immunity (born at or before the boundary).
    pub tenured_garbage: Bytes,
}

/// Birth-ordered heap with an exact lifetime oracle.
#[derive(Clone, Debug, Default)]
pub struct OracleHeap {
    objects: Vec<SimObject>,
    mem_in_use: Bytes,
}

impl OracleHeap {
    /// Creates an empty heap.
    pub fn new() -> OracleHeap {
        OracleHeap::default()
    }

    /// Inserts a newly allocated object.
    ///
    /// # Panics
    ///
    /// Panics if `birth` is not later than the last inserted birth: the
    /// trace drives insertions in allocation order.
    pub fn insert(&mut self, obj: SimObject) {
        if let Some(last) = self.objects.last() {
            assert!(
                obj.birth > last.birth,
                "births must be strictly increasing: {:?} after {:?}",
                obj.birth,
                last.birth
            );
        }
        self.mem_in_use += Bytes::new(obj.size as u64);
        self.objects.push(obj);
    }

    /// Bytes currently occupying memory (live + unreclaimed garbage).
    pub fn mem_in_use(&self) -> Bytes {
        self.mem_in_use
    }

    /// Number of objects currently in the heap.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when the heap holds no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Exact live bytes at time `at` (oracle knowledge).
    pub fn live_bytes_at(&self, at: VirtualTime) -> Bytes {
        self.objects
            .iter()
            .filter(|o| o.is_live_at(at))
            .map(|o| Bytes::new(o.size as u64))
            .sum()
    }

    /// Index of the first object born strictly after `tb`.
    fn boundary_index(&self, tb: VirtualTime) -> usize {
        self.objects.partition_point(|o| o.birth <= tb)
    }

    /// Performs a scavenge at time `now` with threatening boundary `tb`:
    /// traces live threatened objects, reclaims dead threatened objects,
    /// and leaves immune objects untouched.
    ///
    /// Returns the outcome; afterwards [`OracleHeap::mem_in_use`] reflects
    /// the surviving storage.
    pub fn scavenge(&mut self, tb: VirtualTime, now: VirtualTime) -> ScavengeOutcome {
        let split = self.boundary_index(tb);
        let mut traced = Bytes::ZERO;
        let mut reclaimed = Bytes::ZERO;

        // Partition the threatened tail in place: survivors stay, dead are
        // dropped. Objects keep their birth order.
        let mut write = split;
        for read in split..self.objects.len() {
            let obj = self.objects[read];
            if obj.is_live_at(now) {
                traced += Bytes::new(obj.size as u64);
                self.objects[write] = obj;
                write += 1;
            } else {
                reclaimed += Bytes::new(obj.size as u64);
            }
        }
        self.objects.truncate(write);

        let tenured_garbage: Bytes = self.objects[..split]
            .iter()
            .filter(|o| !o.is_live_at(now))
            .map(|o| Bytes::new(o.size as u64))
            .sum();

        self.mem_in_use = self.mem_in_use.saturating_sub(reclaimed);
        ScavengeOutcome {
            traced,
            reclaimed,
            surviving: self.mem_in_use,
            tenured_garbage,
        }
    }

    /// Builds a survival snapshot for policy boundary decisions at time
    /// `now`: answers "how much live storage was born after `tb`" in
    /// O(log n) per query.
    pub fn survival_snapshot(&self, now: VirtualTime) -> SurvivalSnapshot {
        // Suffix sums of live sizes, aligned with `objects`.
        let mut suffix = vec![0u64; self.objects.len() + 1];
        for (i, o) in self.objects.iter().enumerate().rev() {
            suffix[i] = suffix[i + 1] + if o.is_live_at(now) { o.size as u64 } else { 0 };
        }
        SurvivalSnapshot {
            births: self.objects.iter().map(|o| o.birth).collect(),
            live_suffix: suffix,
        }
    }

    /// Read-only view of the heap contents (tests).
    pub fn objects(&self) -> &[SimObject] {
        &self.objects
    }
}

/// An O(log n) oracle for "live bytes born after `tb`", frozen at one
/// scavenge decision point.
#[derive(Clone, Debug)]
pub struct SurvivalSnapshot {
    births: Vec<VirtualTime>,
    live_suffix: Vec<u64>,
}

impl SurvivalEstimator for SurvivalSnapshot {
    fn surviving_born_after(&self, tb: VirtualTime) -> Bytes {
        let idx = self.births.partition_point(|b| *b <= tb);
        Bytes::new(self.live_suffix[idx])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(birth: u64, size: u32, death: Option<u64>) -> SimObject {
        SimObject {
            birth: VirtualTime::from_bytes(birth),
            size,
            death: death.map(VirtualTime::from_bytes),
        }
    }

    fn t(v: u64) -> VirtualTime {
        VirtualTime::from_bytes(v)
    }

    #[test]
    fn insert_tracks_memory() {
        let mut h = OracleHeap::new();
        h.insert(obj(10, 100, None));
        h.insert(obj(20, 50, Some(30)));
        assert_eq!(h.mem_in_use(), Bytes::new(150));
        assert_eq!(h.len(), 2);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn out_of_order_insert_rejected() {
        let mut h = OracleHeap::new();
        h.insert(obj(20, 1, None));
        h.insert(obj(10, 1, None));
    }

    #[test]
    fn full_scavenge_reclaims_all_dead() {
        let mut h = OracleHeap::new();
        h.insert(obj(10, 100, None)); // live forever
        h.insert(obj(20, 50, Some(30))); // dead at 40
        h.insert(obj(35, 25, Some(100))); // still live at 40
        let out = h.scavenge(VirtualTime::ZERO, t(40));
        assert_eq!(out.traced, Bytes::new(125));
        assert_eq!(out.reclaimed, Bytes::new(50));
        assert_eq!(out.surviving, Bytes::new(125));
        assert_eq!(out.tenured_garbage, Bytes::ZERO);
        assert_eq!(h.mem_in_use(), Bytes::new(125));
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn boundary_protects_dead_immune_objects() {
        let mut h = OracleHeap::new();
        h.insert(obj(10, 100, Some(15))); // dead, immune at tb=20
        h.insert(obj(20, 50, Some(25))); // dead, immune (birth == tb ⇒ immune)
        h.insert(obj(30, 25, Some(35))); // dead, threatened
        h.insert(obj(40, 10, None)); // live, threatened
        let out = h.scavenge(t(20), t(50));
        assert_eq!(out.traced, Bytes::new(10));
        assert_eq!(out.reclaimed, Bytes::new(25));
        // Dead-but-immune objects survive as tenured garbage.
        assert_eq!(out.tenured_garbage, Bytes::new(150));
        assert_eq!(out.surviving, Bytes::new(160));
        assert_eq!(h.mem_in_use(), Bytes::new(160));
    }

    #[test]
    fn untenuring_reclaims_previously_immune_garbage() {
        let mut h = OracleHeap::new();
        h.insert(obj(10, 100, Some(15)));
        h.insert(obj(20, 50, None));
        // First scavenge with a young-protecting boundary leaves garbage.
        let first = h.scavenge(t(15), t(25));
        assert_eq!(first.tenured_garbage, Bytes::new(100));
        assert_eq!(h.mem_in_use(), Bytes::new(150));
        // Second scavenge moves the boundary back — the DTB untenuring move.
        let second = h.scavenge(VirtualTime::ZERO, t(30));
        assert_eq!(second.reclaimed, Bytes::new(100));
        assert_eq!(second.tenured_garbage, Bytes::ZERO);
        assert_eq!(h.mem_in_use(), Bytes::new(50));
    }

    #[test]
    fn scavenge_accounting_invariant() {
        let mut h = OracleHeap::new();
        for i in 0..100u64 {
            h.insert(obj(
                (i + 1) * 10,
                8,
                if i % 3 == 0 { Some((i + 2) * 10) } else { None },
            ));
        }
        let before = h.mem_in_use();
        let out = h.scavenge(t(300), t(1000));
        assert_eq!(out.surviving + out.reclaimed, before);
    }

    #[test]
    fn survival_snapshot_matches_naive_query() {
        let mut h = OracleHeap::new();
        for i in 0..50u64 {
            h.insert(obj(
                (i + 1) * 7,
                (i % 13 + 1) as u32,
                if i % 2 == 0 {
                    Some((i + 1) * 7 + 40)
                } else {
                    None
                },
            ));
        }
        let now = t(200);
        let snap = h.survival_snapshot(now);
        use dtb_core::policy::SurvivalEstimator;
        for tb in [0u64, 6, 7, 50, 111, 200, 350, 1000] {
            let naive: u64 = h
                .objects()
                .iter()
                .filter(|o| o.birth > t(tb) && o.is_live_at(now))
                .map(|o| o.size as u64)
                .sum();
            assert_eq!(
                snap.surviving_born_after(t(tb)),
                Bytes::new(naive),
                "tb={tb}"
            );
        }
    }

    #[test]
    fn empty_heap_scavenge_is_noop() {
        let mut h = OracleHeap::new();
        let out = h.scavenge(VirtualTime::ZERO, t(10));
        assert_eq!(out, ScavengeOutcome::default());
        assert!(h.is_empty());
    }

    #[test]
    fn live_bytes_at_uses_oracle() {
        let mut h = OracleHeap::new();
        h.insert(obj(10, 100, Some(50)));
        h.insert(obj(20, 30, None));
        assert_eq!(h.live_bytes_at(t(40)), Bytes::new(130));
        assert_eq!(h.live_bytes_at(t(50)), Bytes::new(30));
    }
}
