//! The oracle heap: the simulated collector's view of storage.
//!
//! The heap holds every object that has been allocated and not yet
//! *reclaimed*. Because this is a garbage-collected world, a `Free` event
//! in the trace does not release memory — it only records the moment the
//! object became unreachable (the lifetime oracle). Memory in use only
//! drops when a scavenge reclaims unreachable threatened objects.
//!
//! # Incremental indices
//!
//! [`OracleHeap`] maintains its aggregates incrementally instead of
//! rescanning the object vector per query:
//!
//! - Every object ever born gets a **global slot** — its position in
//!   birth order over the whole run, never reused. `births` maps slots to
//!   birth times and is append-only, so any boundary `tb` resolves to a
//!   slot split point with one binary search.
//! - Two [Fenwick trees](fenwick) over global slots partition the bytes
//!   still occupying memory: `live` holds objects whose oracle death lies
//!   in the future, `dead` holds dead-but-unreclaimed bytes. A death
//!   moves bytes from `live` to `dead`; a reclaim removes them from
//!   `dead`. Boundary aggregates (traced, reclaimed, tenured garbage,
//!   survival) are prefix/suffix sums, O(log n) each.
//! - Deaths are applied **lazily**, and in two stages. Inserts append
//!   `(death, slot, size)` to an unordered staging vector in O(1); the
//!   next clock advance (a scavenge or an oracle query) drains the stage:
//!   deaths already in the past are applied directly — the live→dead
//!   Fenwick moves commute, so order within a batch is irrelevant — and
//!   only the stragglers whose deaths still lie in the future pay for a
//!   min-heap insertion. Since most objects die before the scavenge after
//!   their birth, the common case never touches the priority queue at
//!   all, and each object is staged and drained exactly once.
//!
//! A scavenge therefore costs O(dead tail + log n): the Fenwick sums
//! answer the byte accounting, and the compaction walk is *narrowed* to
//! the slot range that actually holds dead bytes — two descents of the
//! dead tree ([`fenwick::Fenwick::lower_bound`]) bracket the first and
//! last unreclaimed dead slots, the walk filters only residents between
//! them, and the all-live tail beyond the last dead slot moves left with
//! one `memmove`. A deep boundary (`FULL`, `DTBMEM`) no longer pays to
//! re-inspect thousands of live survivors that merely sit above the
//! split. Nothing on the scavenge path allocates; survival snapshots are
//! borrowed views into the live index rather than freshly built vectors
//! (see `crates/sim/tests/zero_alloc.rs`).
//!
//! Slots are nominally never reused, but a long-running trace would then
//! grow the index with every object ever born even though almost all of
//! them are long reclaimed. After a scavenge, once reclaimed slots
//! outnumber residents 2:1 (and the index tops a 1024-slot floor), the
//! heap **rebases** the slot space onto the residents in place —
//! reclaimed slots hold zero bytes in both trees, so every aggregate is
//! preserved bit-for-bit while index memory stays proportional to the
//! resident set. This is what keeps a streaming
//! [`EventSource`](dtb_trace::EventSource) run in O(live set) memory.
//!
//! The original scan-based implementation survives as
//! [`naive::NaiveHeap`], the executable specification the differential
//! suite checks this heap against.

pub(crate) mod fenwick;
pub mod naive;

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use dtb_core::history::BoundaryCandidates;
use dtb_core::policy::{SurvivalEstimator, SurvivalLender};
use dtb_core::time::{Bytes, VirtualTime};
use serde::{Deserialize, Serialize};

use fenwick::Fenwick;

/// One object in the oracle heap.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimObject {
    /// Birth time on the allocation clock.
    pub birth: VirtualTime,
    /// Size in bytes.
    pub size: u32,
    /// Oracle death time; `None` = lives to the end of the trace.
    pub death: Option<VirtualTime>,
}

impl SimObject {
    /// True when the object is reachable at time `at`.
    pub fn is_live_at(&self, at: VirtualTime) -> bool {
        self.death.is_none_or(|d| d > at)
    }
}

/// The outcome of one scavenge over the oracle heap.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScavengeOutcome {
    /// Bytes of reachable threatened storage traced.
    pub traced: Bytes,
    /// Bytes of unreachable threatened storage reclaimed.
    pub reclaimed: Bytes,
    /// Bytes surviving (everything immune + live threatened).
    pub surviving: Bytes,
    /// Bytes of *tenured garbage* left behind: dead objects protected by
    /// immunity (born at or before the boundary).
    pub tenured_garbage: Bytes,
}

/// The heap interface the simulation engine drives.
///
/// Implemented by the incremental [`OracleHeap`] (production) and the
/// scan-based [`naive::NaiveHeap`] (executable specification); the
/// differential suite runs the engine over both and asserts identical
/// results. Queries take `&mut self` because the incremental heap applies
/// pending deaths lazily — callers must present monotonically
/// non-decreasing times, which the trace's event order guarantees.
pub trait SimHeap: SurvivalLender {
    /// True when the deterministic per-epoch parallel engine
    /// ([`crate::par`]) may stand in for a serial run over this heap.
    /// Only the incremental [`OracleHeap`] opts in: the parallel drive
    /// reproduces *its* observable semantics, and substituting a
    /// different heap implementation is exactly the situation (the
    /// differential suites) where the run must exercise that heap's own
    /// code path.
    const EPOCH_PARALLEL: bool = false;

    /// An empty heap with room for `n` objects.
    fn with_capacity(n: usize) -> Self;

    /// Inserts a newly allocated object; births arrive strictly
    /// increasing.
    fn insert(&mut self, obj: SimObject);

    /// Bytes currently occupying memory (live + unreclaimed garbage).
    fn mem_in_use(&self) -> Bytes;

    /// Number of objects currently in the heap.
    fn len(&self) -> usize;

    /// True when the heap holds no objects.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Exact live bytes at time `at` (oracle knowledge).
    fn live_bytes_at(&mut self, at: VirtualTime) -> Bytes;

    /// Performs a scavenge at time `now` with threatening boundary `tb`.
    fn scavenge(&mut self, tb: VirtualTime, now: VirtualTime) -> ScavengeOutcome;
}

/// A serializable image of a heap's observable state, for checkpointing.
///
/// Both heap implementations reduce to the same image: the objects still
/// occupying memory (in birth order) plus the lazy-clock high-water mark.
/// Everything else — Fenwick indices, the pending-death queue, slot
/// numbering — is derived data that [`CheckpointHeap::restore`] rebuilds,
/// which is exactly the argument for why a restored heap is observably
/// identical: the incremental heap's own compaction already renumbers
/// slots mid-run without disturbing a single query answer.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HeapSnapshot {
    /// Objects still occupying memory, in birth order.
    pub objects: Vec<SimObject>,
    /// The heap's query-time high-water mark: every death at or before
    /// this instant has been applied.
    pub clock: VirtualTime,
}

/// A [`SimHeap`] that can round-trip its state through a [`HeapSnapshot`].
///
/// The contract checkpoint/resume relies on: for any prefix of a trace,
/// `restore(&h.snapshot())` then replaying the remaining events must
/// produce bit-identical observables (`mem_in_use`, `live_bytes_at`,
/// scavenge outcomes, survival queries) to never having snapshotted at
/// all. The differential suites check this across every policy.
pub trait CheckpointHeap: SimHeap {
    /// Captures the heap's observable state.
    fn snapshot(&self) -> HeapSnapshot;

    /// Rebuilds a heap from a snapshot.
    fn restore(snapshot: &HeapSnapshot) -> Self;
}

/// An object still occupying memory, keyed by its global slot.
#[derive(Clone, Copy, Debug)]
struct Resident {
    /// Global (birth-order) slot; `births[slot]` is the birth time.
    slot: u32,
    /// Size in bytes.
    size: u32,
    /// Oracle death time; `None` = lives to the end of the trace.
    death: Option<VirtualTime>,
}

/// Slot-count floor below which the heap never compacts: rebasing a tiny
/// index saves nothing, and the floor keeps short runs on the exact
/// append-only fast path.
const COMPACT_MIN_SLOTS: usize = 1024;

/// Birth-ordered heap with an exact lifetime oracle, maintained
/// incrementally (see the module docs for the index design).
#[derive(Clone, Debug, Default)]
pub struct OracleHeap {
    /// Birth time per global slot, append-only.
    births: Vec<VirtualTime>,
    /// Live bytes per global slot (death still in the future).
    live: Fenwick,
    /// Dead-but-unreclaimed bytes per global slot.
    dead: Fenwick,
    /// Future deaths awaiting application: `(death, slot, size)` ordered
    /// soonest-first. Only populated from `deferred` at clock advances,
    /// and only with deaths that are still in the future then.
    pending: BinaryHeap<Reverse<(VirtualTime, u32, u32)>>,
    /// Unordered staging area for deaths recorded since the last clock
    /// advance; see the module docs' two-stage lazy-death design.
    deferred: Vec<(VirtualTime, u32, u32)>,
    /// Objects still occupying memory, ordered by slot.
    present: Vec<Resident>,
    /// High-water mark of query time: every death `<= clock` has been
    /// moved from `live` to `dead`.
    clock: VirtualTime,
}

impl OracleHeap {
    /// Creates an empty heap.
    pub fn new() -> OracleHeap {
        OracleHeap::default()
    }

    /// Creates an empty heap with index capacity for `n` objects.
    pub fn with_capacity(n: usize) -> OracleHeap {
        OracleHeap {
            births: Vec::with_capacity(n),
            live: Fenwick::with_capacity(n),
            dead: Fenwick::with_capacity(n),
            pending: BinaryHeap::with_capacity(n),
            deferred: Vec::with_capacity(n),
            present: Vec::with_capacity(n),
            clock: VirtualTime::ZERO,
        }
    }

    /// Inserts a newly allocated object.
    ///
    /// Births must arrive strictly increasing (the trace drives
    /// insertions in allocation order), and sizes must be nonzero (the
    /// trace layer rejects zero-sized allocations as
    /// [`TraceError::ZeroSizedAlloc`](dtb_trace::TraceError); the scavenge
    /// walk relies on every dead resident being visible to the byte
    /// indices). Violations panic in debug builds.
    pub fn insert(&mut self, obj: SimObject) {
        if let Some(last) = self.births.last() {
            debug_assert!(
                obj.birth > *last,
                "births must be strictly increasing: {:?} after {:?}",
                obj.birth,
                last
            );
        }
        debug_assert!(obj.size > 0, "zero-sized objects are rejected upstream");
        let slot = self.births.len();
        debug_assert!(slot <= u32::MAX as usize, "slot index exceeds u32");
        let slot = slot as u32;
        self.births.push(obj.birth);
        self.live.push(obj.size as u64);
        self.dead.push(0);
        self.present.push(Resident {
            slot,
            size: obj.size,
            death: obj.death,
        });
        if let Some(d) = obj.death {
            if d <= self.clock {
                // Already past its death on the lazy clock (an object can
                // die the instant it is born): record it dead immediately.
                self.live.sub(slot as usize, obj.size as u64);
                self.dead.add(slot as usize, obj.size as u64);
            } else {
                self.deferred.push((d, slot, obj.size));
            }
        }
    }

    /// Moves every death at or before `now` from the live index to the
    /// dead index. Amortized O(log n) per object over the whole run —
    /// and O(1) heap traffic for the (typical) object whose death has
    /// already passed by the first clock advance after its birth.
    fn advance_clock(&mut self, now: VirtualTime) {
        if now <= self.clock {
            return;
        }
        self.clock = now;
        // Drain the staging area first: deaths already at or before `now`
        // apply directly (live→dead moves on distinct slots commute, so
        // the unordered batch is equivalent to sorted application); only
        // future deaths enter the priority queue.
        let deferred = std::mem::take(&mut self.deferred);
        for &(d, slot, size) in &deferred {
            if d <= now {
                self.live.sub(slot as usize, size as u64);
                self.dead.add(slot as usize, size as u64);
            } else {
                self.pending.push(Reverse((d, slot, size)));
            }
        }
        // Hand the buffer back (emptied) so insert keeps its capacity.
        self.deferred = deferred;
        self.deferred.clear();
        while let Some(&Reverse((d, slot, size))) = self.pending.peek() {
            if d > now {
                break;
            }
            self.pending.pop();
            self.live.sub(slot as usize, size as u64);
            self.dead.add(slot as usize, size as u64);
        }
    }

    /// Bytes currently occupying memory (live + unreclaimed garbage).
    pub fn mem_in_use(&self) -> Bytes {
        // Deaths only move bytes between the two indices, so the sum is
        // exact regardless of how far the lazy clock has advanced.
        Bytes::new(self.live.total() + self.dead.total())
    }

    /// Number of objects currently in the heap.
    pub fn len(&self) -> usize {
        self.present.len()
    }

    /// True when the heap holds no objects.
    pub fn is_empty(&self) -> bool {
        self.present.is_empty()
    }

    /// Exact live bytes at time `at` (oracle knowledge), O(deaths since
    /// the last query).
    ///
    /// Query times must be monotonically non-decreasing across
    /// [`OracleHeap::live_bytes_at`], [`OracleHeap::scavenge`], and
    /// [`OracleHeap::survival_snapshot`].
    pub fn live_bytes_at(&mut self, at: VirtualTime) -> Bytes {
        self.advance_clock(at);
        Bytes::new(self.live.total())
    }

    /// First global slot born strictly after `tb`.
    fn boundary_slot(&self, tb: VirtualTime) -> usize {
        self.births.partition_point(|b| *b <= tb)
    }

    /// Performs a scavenge at time `now` with threatening boundary `tb`:
    /// traces live threatened objects, reclaims dead threatened objects,
    /// and leaves immune objects untouched.
    ///
    /// Byte accounting is answered by the Fenwick indices in O(log n);
    /// only the compaction of the dead threatened residents walks
    /// objects, so the whole call is O(dead tail + log n) and performs no
    /// heap allocation. Returns the outcome; afterwards
    /// [`OracleHeap::mem_in_use`] reflects the surviving storage.
    pub fn scavenge(&mut self, tb: VirtualTime, now: VirtualTime) -> ScavengeOutcome {
        self.advance_clock(now);
        let split = self.boundary_slot(tb);
        let traced = Bytes::new(self.live.suffix(split));
        let reclaimed = Bytes::new(self.dead.suffix(split));
        let tenured_garbage = Bytes::new(self.dead.prefix(split));

        // Compact the threatened residents in place: survivors stay (in
        // slot order), dead objects leave the dead index and the heap.
        // The walk is narrowed to the slot range that actually holds
        // threatened dead bytes — every resident (sizes are nonzero)
        // outside it is live or immune and keeps its position, except the
        // all-live tail beyond the last dead slot, which shifts left in
        // one move. With nothing to reclaim the walk vanishes entirely,
        // which is what lets a deep boundary (`FULL`, `DTBMEM`) scavenge
        // without re-inspecting its thousands of live survivors.
        if !reclaimed.is_zero() {
            // First threatened slot holding dead bytes: descend to the
            // largest count whose dead-prefix is still ≤ the immune
            // prefix. Likewise the last dead slot overall (it is ≥ split
            // because `dead.suffix(split) > 0`).
            let first_dead = self.dead.lower_bound(self.dead.prefix(split));
            let last_dead = self.dead.lower_bound(self.dead.total() - 1);
            debug_assert!(first_dead >= split);
            let lo = self
                .present
                .partition_point(|r| (r.slot as usize) < first_dead);
            let hi = self
                .present
                .partition_point(|r| (r.slot as usize) <= last_dead);
            let mut write = lo;
            for read in lo..hi {
                let r = self.present[read];
                if r.death.is_some_and(|d| d <= now) {
                    self.dead.sub(r.slot as usize, r.size as u64);
                } else {
                    self.present[write] = r;
                    write += 1;
                }
            }
            if write < hi {
                self.present.copy_within(hi.., write);
                let removed = hi - write;
                self.present.truncate(self.present.len() - removed);
            }
        }

        debug_assert_eq!(self.dead.suffix(split), 0, "all threatened dead reclaimed");
        debug_assert!(
            self.present
                .iter()
                .all(|r| (r.slot as usize) < split || r.death.is_none_or(|d| d > now)),
            "no dead threatened resident left behind"
        );
        let outcome = ScavengeOutcome {
            traced,
            reclaimed,
            surviving: self.mem_in_use(),
            tenured_garbage,
        };
        // Dead-prefix compaction: once reclaimed slots dominate the index,
        // rebase it onto the residents so index memory tracks the
        // *resident* set instead of every object ever born — the property
        // that lets a streaming source run in O(live set) memory.
        if self.births.len() >= COMPACT_MIN_SLOTS.max(2 * self.present.len()) {
            self.compact();
        }
        outcome
    }

    /// Rebases the slot space onto the surviving residents, discarding
    /// slots of reclaimed objects.
    ///
    /// Every observable is preserved bit-for-bit: reclaimed slots hold
    /// zero bytes in both Fenwick trees, so dropping their births shifts
    /// every `partition_point` split without changing any prefix/suffix
    /// sum. The rebuild reuses the existing buffers (`clear` keeps
    /// capacity; the birth copy moves entries strictly forward), so the
    /// scavenge path stays allocation-free (see
    /// `crates/sim/tests/zero_alloc.rs`).
    fn compact(&mut self) {
        let n = self.present.len();
        // Scavenge advanced the clock, which drains the staging area.
        debug_assert!(self.deferred.is_empty(), "compaction with staged deaths");
        self.pending.clear();
        self.live.clear();
        self.dead.clear();
        for new_slot in 0..n {
            let r = self.present[new_slot];
            // Residents are slot-ordered, so `new_slot <= r.slot` and the
            // in-place copy never reads an already-overwritten entry.
            self.births[new_slot] = self.births[r.slot as usize];
            self.present[new_slot].slot = new_slot as u32;
            if r.death.is_some_and(|d| d <= self.clock) {
                // Dead but immune (tenured garbage): bytes sit in `dead`,
                // and its pending entry was drained when the clock passed.
                self.live.push(0);
                self.dead.push(r.size as u64);
            } else {
                self.live.push(r.size as u64);
                self.dead.push(0);
                if let Some(d) = r.death {
                    self.pending.push(Reverse((d, new_slot as u32, r.size)));
                }
            }
        }
        self.births.truncate(n);
    }

    /// Number of slots in the heap's index (≥ [`OracleHeap::len`];
    /// bounded by compaction, see [`OracleHeap::scavenge`]).
    pub fn index_len(&self) -> usize {
        self.births.len()
    }

    /// Borrows a survival snapshot for policy boundary decisions at time
    /// `now`: answers "how much live storage was born after `tb`" in
    /// O(log n) per query, without allocating.
    pub fn survival_snapshot(&mut self, now: VirtualTime) -> SurvivalSnapshot<'_> {
        self.advance_clock(now);
        SurvivalSnapshot {
            births: &self.births,
            live: &self.live,
        }
    }

    /// Iterates the objects still in the heap, in birth order (tests).
    pub fn iter_objects(&self) -> impl ExactSizeIterator<Item = SimObject> + '_ {
        self.present.iter().map(|r| SimObject {
            birth: self.births[r.slot as usize],
            size: r.size,
            death: r.death,
        })
    }
}

/// An O(log n) oracle for "live bytes born after `tb`", borrowed from the
/// heap's live index at one scavenge decision point. Construction is
/// allocation-free — the view reads the incrementally maintained index
/// directly.
#[derive(Clone, Copy, Debug)]
pub struct SurvivalSnapshot<'a> {
    births: &'a [VirtualTime],
    live: &'a Fenwick,
}

impl SurvivalEstimator for SurvivalSnapshot<'_> {
    fn surviving_born_after(&self, tb: VirtualTime) -> Bytes {
        let idx = self.births.partition_point(|b| *b <= tb);
        Bytes::new(self.live.suffix(idx))
    }

    /// The inverse query as a single descent of the live-bytes Fenwick
    /// tree: O(log n) total, instead of the default's one O(log n)
    /// survival probe per candidate.
    ///
    /// A boundary `t` fits iff `live.suffix(slots born ≤ t) <= trace_max`,
    /// i.e. iff at least `K = live.total() - trace_max` live bytes were
    /// born at or before `t`. One [`Fenwick::lower_bound`] descent finds
    /// `s*`, the smallest slot count covering `K` live bytes; a boundary
    /// admits `s*` slots exactly when it is at or past the birth of slot
    /// `s* - 1`, so the answer is the first candidate at or after that
    /// birth time — the same suffix of fitting candidates the default
    /// scan walks to, located by binary search instead.
    fn oldest_boundary_within(
        &self,
        trace_max: Bytes,
        candidates: BoundaryCandidates<'_>,
    ) -> Option<VirtualTime> {
        let total = self.live.total();
        let budget = trace_max.as_u64();
        if total <= budget {
            // Every boundary fits, even one before the first birth.
            return candidates.first();
        }
        // Smallest count with prefix ≥ K, via largest count with
        // prefix ≤ K - 1 (K ≥ 1 here, and the count is ≤ len because
        // K ≤ total).
        let s_star = self.live.lower_bound(total - budget - 1) + 1;
        candidates.first_at_or_after(self.births[s_star - 1])
    }
}

impl SurvivalLender for OracleHeap {
    type Survival<'a> = SurvivalSnapshot<'a>;

    fn survival_view(&mut self, now: VirtualTime) -> SurvivalSnapshot<'_> {
        self.survival_snapshot(now)
    }
}

impl CheckpointHeap for OracleHeap {
    fn snapshot(&self) -> HeapSnapshot {
        HeapSnapshot {
            objects: self.iter_objects().collect(),
            clock: self.clock,
        }
    }

    fn restore(snapshot: &HeapSnapshot) -> OracleHeap {
        // Reinserting the residents renumbers them onto fresh slots
        // 0..n — the same rebasing `compact` performs mid-run, which
        // preserves every observable. Advancing the clock afterwards
        // re-applies the deaths the original heap had already drained.
        let mut heap = OracleHeap::with_capacity(snapshot.objects.len());
        for obj in &snapshot.objects {
            heap.insert(*obj);
        }
        heap.advance_clock(snapshot.clock);
        heap
    }
}

impl SimHeap for OracleHeap {
    const EPOCH_PARALLEL: bool = true;

    fn with_capacity(n: usize) -> OracleHeap {
        OracleHeap::with_capacity(n)
    }

    fn insert(&mut self, obj: SimObject) {
        OracleHeap::insert(self, obj);
    }

    fn mem_in_use(&self) -> Bytes {
        OracleHeap::mem_in_use(self)
    }

    fn len(&self) -> usize {
        OracleHeap::len(self)
    }

    fn live_bytes_at(&mut self, at: VirtualTime) -> Bytes {
        OracleHeap::live_bytes_at(self, at)
    }

    fn scavenge(&mut self, tb: VirtualTime, now: VirtualTime) -> ScavengeOutcome {
        OracleHeap::scavenge(self, tb, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(birth: u64, size: u32, death: Option<u64>) -> SimObject {
        SimObject {
            birth: VirtualTime::from_bytes(birth),
            size,
            death: death.map(VirtualTime::from_bytes),
        }
    }

    fn t(v: u64) -> VirtualTime {
        VirtualTime::from_bytes(v)
    }

    #[test]
    fn insert_tracks_memory() {
        let mut h = OracleHeap::new();
        h.insert(obj(10, 100, None));
        h.insert(obj(20, 50, Some(30)));
        assert_eq!(h.mem_in_use(), Bytes::new(150));
        assert_eq!(h.len(), 2);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn out_of_order_insert_rejected() {
        let mut h = OracleHeap::new();
        h.insert(obj(20, 1, None));
        h.insert(obj(10, 1, None));
    }

    #[test]
    fn full_scavenge_reclaims_all_dead() {
        let mut h = OracleHeap::new();
        h.insert(obj(10, 100, None)); // live forever
        h.insert(obj(20, 50, Some(30))); // dead at 40
        h.insert(obj(35, 25, Some(100))); // still live at 40
        let out = h.scavenge(VirtualTime::ZERO, t(40));
        assert_eq!(out.traced, Bytes::new(125));
        assert_eq!(out.reclaimed, Bytes::new(50));
        assert_eq!(out.surviving, Bytes::new(125));
        assert_eq!(out.tenured_garbage, Bytes::ZERO);
        assert_eq!(h.mem_in_use(), Bytes::new(125));
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn boundary_protects_dead_immune_objects() {
        let mut h = OracleHeap::new();
        h.insert(obj(10, 100, Some(15))); // dead, immune at tb=20
        h.insert(obj(20, 50, Some(25))); // dead, immune (birth == tb ⇒ immune)
        h.insert(obj(30, 25, Some(35))); // dead, threatened
        h.insert(obj(40, 10, None)); // live, threatened
        let out = h.scavenge(t(20), t(50));
        assert_eq!(out.traced, Bytes::new(10));
        assert_eq!(out.reclaimed, Bytes::new(25));
        // Dead-but-immune objects survive as tenured garbage.
        assert_eq!(out.tenured_garbage, Bytes::new(150));
        assert_eq!(out.surviving, Bytes::new(160));
        assert_eq!(h.mem_in_use(), Bytes::new(160));
    }

    #[test]
    fn untenuring_reclaims_previously_immune_garbage() {
        let mut h = OracleHeap::new();
        h.insert(obj(10, 100, Some(15)));
        h.insert(obj(20, 50, None));
        // First scavenge with a young-protecting boundary leaves garbage.
        let first = h.scavenge(t(15), t(25));
        assert_eq!(first.tenured_garbage, Bytes::new(100));
        assert_eq!(h.mem_in_use(), Bytes::new(150));
        // Second scavenge moves the boundary back — the DTB untenuring move.
        let second = h.scavenge(VirtualTime::ZERO, t(30));
        assert_eq!(second.reclaimed, Bytes::new(100));
        assert_eq!(second.tenured_garbage, Bytes::ZERO);
        assert_eq!(h.mem_in_use(), Bytes::new(50));
    }

    #[test]
    fn scavenge_accounting_invariant() {
        let mut h = OracleHeap::new();
        for i in 0..100u64 {
            h.insert(obj(
                (i + 1) * 10,
                8,
                if i % 3 == 0 { Some((i + 2) * 10) } else { None },
            ));
        }
        let before = h.mem_in_use();
        let out = h.scavenge(t(300), t(1000));
        assert_eq!(out.surviving + out.reclaimed, before);
    }

    #[test]
    fn survival_snapshot_matches_naive_query() {
        let mut h = OracleHeap::new();
        for i in 0..50u64 {
            h.insert(obj(
                (i + 1) * 7,
                (i % 13 + 1) as u32,
                if i % 2 == 0 {
                    Some((i + 1) * 7 + 40)
                } else {
                    None
                },
            ));
        }
        let now = t(200);
        // Expected answers from a plain filter, computed before the
        // snapshot borrows the heap.
        let queries = [0u64, 6, 7, 50, 111, 200, 350, 1000];
        let expected: Vec<u64> = queries
            .iter()
            .map(|&tb| {
                h.iter_objects()
                    .filter(|o| o.birth > t(tb) && o.is_live_at(now))
                    .map(|o| o.size as u64)
                    .sum()
            })
            .collect();
        let snap = h.survival_snapshot(now);
        for (&tb, &want) in queries.iter().zip(&expected) {
            assert_eq!(
                snap.surviving_born_after(t(tb)),
                Bytes::new(want),
                "tb={tb}"
            );
        }
    }

    #[test]
    fn inverse_query_matches_default_scan() {
        use dtb_core::history::{ScavengeHistory, ScavengeRecord};

        let mut h = OracleHeap::new();
        for i in 0..60u64 {
            h.insert(obj(
                (i + 1) * 11,
                (i % 17 + 1) as u32,
                if i % 3 == 0 {
                    Some((i + 1) * 11 + 90)
                } else {
                    None
                },
            ));
        }
        let now = t(700);
        let history: ScavengeHistory = (1..=6)
            .map(|k| ScavengeRecord {
                at: t(k * 100),
                boundary: VirtualTime::ZERO,
                traced: Bytes::ZERO,
                surviving: Bytes::ZERO,
                reclaimed: Bytes::ZERO,
                mem_before: Bytes::ZERO,
            })
            .collect();
        let snap = h.survival_snapshot(now);
        for budget in [0u64, 1, 5, 17, 60, 150, 300, 100_000] {
            for from in [0u64, 150, 250, 450, 650, 900] {
                let candidates = history.candidates_at_or_after(t(from));
                // The default scan, evaluated against the same snapshot.
                let want = candidates
                    .times()
                    .find(|&c| snap.surviving_born_after(c) <= Bytes::new(budget));
                let got = snap.oldest_boundary_within(Bytes::new(budget), candidates);
                assert_eq!(got, want, "budget={budget} from={from}");
            }
        }
    }

    #[test]
    fn empty_heap_scavenge_is_noop() {
        let mut h = OracleHeap::new();
        let out = h.scavenge(VirtualTime::ZERO, t(10));
        assert_eq!(out, ScavengeOutcome::default());
        assert!(h.is_empty());
    }

    #[test]
    fn live_bytes_at_uses_oracle() {
        let mut h = OracleHeap::new();
        h.insert(obj(10, 100, Some(50)));
        h.insert(obj(20, 30, None));
        assert_eq!(h.live_bytes_at(t(40)), Bytes::new(130));
        assert_eq!(h.live_bytes_at(t(50)), Bytes::new(30));
    }

    #[test]
    fn insert_after_clock_advance_applies_past_death_immediately() {
        let mut h = OracleHeap::new();
        h.insert(obj(10, 100, None));
        assert_eq!(h.live_bytes_at(t(40)), Bytes::new(100));
        // Born at 40 and dead the same instant the clock already reached.
        h.insert(obj(40, 7, Some(40)));
        assert_eq!(h.live_bytes_at(t(40)), Bytes::new(100));
        assert_eq!(h.mem_in_use(), Bytes::new(107));
        let out = h.scavenge(VirtualTime::ZERO, t(40));
        assert_eq!(out.reclaimed, Bytes::new(7));
        assert_eq!(h.mem_in_use(), Bytes::new(100));
    }

    #[test]
    fn compaction_bounds_the_index_under_churn() {
        let mut h = OracleHeap::new();
        let mut clock = 0u64;
        let mut max_index = 0usize;
        // 8k short-lived objects, scavenged every 256 births: without
        // compaction the index would end at 8_000 slots.
        for i in 0..8_000u64 {
            clock += 16;
            h.insert(obj(clock, 16, Some(clock + 64)));
            if i % 256 == 255 {
                h.scavenge(VirtualTime::ZERO, t(clock));
                max_index = max_index.max(h.index_len());
            }
        }
        assert!(
            max_index <= 2 * COMPACT_MIN_SLOTS,
            "index grew to {max_index} slots under pure churn"
        );
        assert!(h.index_len() >= h.len());
    }

    #[test]
    fn compaction_preserves_every_observable() {
        // Mirror a churn-heavy run against a never-compacting twin and a
        // NaiveHeap; every query must agree bit-for-bit even though the
        // compacting heap rebases its slot space many times over.
        let mut fast = OracleHeap::new();
        let mut slow = naive::NaiveHeap::new();
        let mut clock = 0u64;
        let mut compactions = 0usize;
        for i in 0..6_000u64 {
            clock += i % 29 + 1;
            let o = obj(
                clock,
                (i % 61 + 1) as u32,
                // Mix: quick deaths, slow deaths, immortals.
                match i % 5 {
                    0 | 1 => Some(clock + i % 97 + 1),
                    2 | 3 => Some(clock + 3_000),
                    _ => None,
                },
            );
            fast.insert(o);
            slow.insert(o);
            if i % 100 == 99 {
                let now = t(clock);
                // Alternate deep and shallow boundaries to exercise both
                // tenuring and untenuring over the rebased slot space.
                let tb = if i % 200 == 99 {
                    t(clock.saturating_sub(2_000))
                } else {
                    VirtualTime::ZERO
                };
                assert_eq!(fast.live_bytes_at(now), slow.live_bytes_at(now), "i={i}");
                let before = fast.index_len();
                assert_eq!(fast.scavenge(tb, now), slow.scavenge(tb, now), "i={i}");
                if fast.index_len() < before {
                    compactions += 1;
                }
                assert_eq!(fast.mem_in_use(), slow.mem_in_use(), "i={i}");
                assert_eq!(fast.len(), slow.len(), "i={i}");
                let queries = [0u64, clock / 2, clock.saturating_sub(500), clock];
                let expect: Vec<Bytes> = {
                    let snap_slow = slow.survival_view(now);
                    queries
                        .iter()
                        .map(|&q| snap_slow.surviving_born_after(t(q)))
                        .collect()
                };
                let snap_fast = fast.survival_snapshot(now);
                for (&q, &want) in queries.iter().zip(&expect) {
                    assert_eq!(snap_fast.surviving_born_after(t(q)), want, "i={i} q={q}");
                }
            }
        }
        assert!(compactions > 0, "churn run never triggered a compaction");
    }

    #[test]
    fn matches_naive_heap_on_interleaved_operations() {
        let mut fast = OracleHeap::new();
        let mut slow = naive::NaiveHeap::new();
        let mut clock = 0u64;
        for i in 0..400u64 {
            clock += i % 17 + 1;
            let o = obj(
                clock,
                (i % 97 + 1) as u32,
                if i % 3 != 2 {
                    Some(clock + (i % 13) * 50)
                } else {
                    None
                },
            );
            fast.insert(o);
            slow.insert(o);
            if i % 40 == 39 {
                let now = t(clock);
                let tb = t(clock.saturating_sub(300));
                assert_eq!(fast.live_bytes_at(now), slow.live_bytes_at(now), "i={i}");
                assert_eq!(fast.scavenge(tb, now), slow.scavenge(tb, now), "i={i}");
                assert_eq!(fast.mem_in_use(), slow.mem_in_use(), "i={i}");
                assert_eq!(fast.len(), slow.len(), "i={i}");
            }
        }
    }
}
