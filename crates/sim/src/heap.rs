//! The oracle heap: the simulated collector's view of storage.
//!
//! The heap holds every object that has been allocated and not yet
//! *reclaimed*. Because this is a garbage-collected world, a `Free` event
//! in the trace does not release memory — it only records the moment the
//! object became unreachable (the lifetime oracle). Memory in use only
//! drops when a scavenge reclaims unreachable threatened objects.
//!
//! # Incremental indices
//!
//! [`OracleHeap`] maintains its aggregates incrementally instead of
//! rescanning the object vector per query:
//!
//! - Every object ever born gets a **global slot** — its position in
//!   birth order over the whole run, never reused. `births` maps slots to
//!   birth times and is append-only, so any boundary `tb` resolves to a
//!   slot split point with one binary search.
//! - One **paired** [Fenwick tree](fenwick) over global slots partitions
//!   the bytes still occupying memory into `[live, dead]` components per
//!   node: live bytes belong to objects whose oracle death lies in the
//!   future, dead bytes are dead-but-unreclaimed. A death moves bytes
//!   from live to dead in a *single* tree walk
//!   ([`fenwick::PairedFenwick::move_to_dead_many`] — one 16-byte node
//!   pair per level instead of two disjoint trees); a reclaim removes
//!   them from the dead component. Boundary aggregates (traced,
//!   reclaimed, tenured garbage, survival) are prefix/suffix sums,
//!   O(log n) each, and one paired descent answers both components.
//! - Deaths are applied **lazily**, and in two stages. Inserts do no
//!   death bookkeeping at all: the struct-of-arrays resident columns
//!   already hold each new object's death time, so the rows appended
//!   since the last clock advance form a *staged suffix* marked by one
//!   watermark. The next clock advance (a scavenge or an oracle query)
//!   scans that suffix once: deaths already in the past are applied
//!   directly — the live→dead moves commute, so order within a batch is
//!   irrelevant — and only the stragglers whose deaths still lie in the
//!   future enter a small unordered pending set, drained by a linear
//!   sweep (guarded by its cached minimum death) when their time comes.
//!   Since most objects die before the scavenge after their birth, the
//!   common case never touches the pending set at all, and each object
//!   is examined exactly once.
//!
//! A scavenge therefore costs O(dead tail + log n): the Fenwick sums
//! answer the byte accounting, and the compaction walk is *narrowed* to
//! the slot range that actually holds dead bytes — two descents of the
//! dead tree ([`fenwick::Fenwick::lower_bound`]) bracket the first and
//! last unreclaimed dead slots, the walk filters only residents between
//! them, and the all-live tail beyond the last dead slot moves left with
//! one `memmove`. A deep boundary (`FULL`, `DTBMEM`) no longer pays to
//! re-inspect thousands of live survivors that merely sit above the
//! split. Nothing on the scavenge path allocates; survival snapshots are
//! borrowed views into the live index rather than freshly built vectors
//! (see `crates/sim/tests/zero_alloc.rs`).
//!
//! Slots are nominally never reused, but a long-running trace would then
//! grow the index with every object ever born even though almost all of
//! them are long reclaimed. After a scavenge, once reclaimed slots
//! outnumber residents 2:1 (and the index tops a 1024-slot floor), the
//! heap **rebases** the slot space onto the residents in place —
//! reclaimed slots hold zero bytes in both trees, so every aggregate is
//! preserved bit-for-bit while index memory stays proportional to the
//! resident set. This is what keeps a streaming
//! [`EventSource`](dtb_trace::EventSource) run in O(live set) memory.
//!
//! The original scan-based implementation survives as
//! [`naive::NaiveHeap`], the executable specification the differential
//! suite checks this heap against.

pub(crate) mod fenwick;
pub mod naive;

use dtb_core::history::BoundaryCandidates;
use dtb_core::policy::{SurvivalEstimator, SurvivalLender};
use dtb_core::time::{Bytes, VirtualTime};
use serde::{Deserialize, Serialize};

use fenwick::PairedFenwick;

/// One object in the oracle heap.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimObject {
    /// Birth time on the allocation clock.
    pub birth: VirtualTime,
    /// Size in bytes.
    pub size: u32,
    /// Oracle death time; `None` = lives to the end of the trace.
    pub death: Option<VirtualTime>,
}

impl SimObject {
    /// True when the object is reachable at time `at`.
    pub fn is_live_at(&self, at: VirtualTime) -> bool {
        self.death.is_none_or(|d| d > at)
    }
}

/// The outcome of one scavenge over the oracle heap.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScavengeOutcome {
    /// Bytes of reachable threatened storage traced.
    pub traced: Bytes,
    /// Bytes of unreachable threatened storage reclaimed.
    pub reclaimed: Bytes,
    /// Bytes surviving (everything immune + live threatened).
    pub surviving: Bytes,
    /// Bytes of *tenured garbage* left behind: dead objects protected by
    /// immunity (born at or before the boundary).
    pub tenured_garbage: Bytes,
}

/// The heap interface the simulation engine drives.
///
/// Implemented by the incremental [`OracleHeap`] (production) and the
/// scan-based [`naive::NaiveHeap`] (executable specification); the
/// differential suite runs the engine over both and asserts identical
/// results. Queries take `&mut self` because the incremental heap applies
/// pending deaths lazily — callers must present monotonically
/// non-decreasing times, which the trace's event order guarantees.
pub trait SimHeap: SurvivalLender {
    /// True when the deterministic per-epoch parallel engine
    /// ([`crate::par`]) may stand in for a serial run over this heap.
    /// Only the incremental [`OracleHeap`] opts in: the parallel drive
    /// reproduces *its* observable semantics, and substituting a
    /// different heap implementation is exactly the situation (the
    /// differential suites) where the run must exercise that heap's own
    /// code path.
    const EPOCH_PARALLEL: bool = false;

    /// An empty heap with room for `n` objects.
    fn with_capacity(n: usize) -> Self;

    /// Inserts a newly allocated object; births arrive strictly
    /// increasing.
    fn insert(&mut self, obj: SimObject);

    /// Inserts a whole validated block of objects from struct-of-arrays
    /// columns (`u64::MAX` death = immortal, the `DTBCTC01` sentinel).
    ///
    /// Must be observably identical to inserting the objects one at a
    /// time; the default does exactly that, and the incremental
    /// [`OracleHeap`] overrides it with bulk index builds.
    fn insert_block(&mut self, births: &[u64], sizes: &[u32], deaths: &[u64]) {
        debug_assert_eq!(births.len(), sizes.len());
        debug_assert_eq!(births.len(), deaths.len());
        for i in 0..births.len() {
            self.insert(SimObject {
                birth: VirtualTime::from_bytes(births[i]),
                size: sizes[i],
                death: (deaths[i] != u64::MAX).then(|| VirtualTime::from_bytes(deaths[i])),
            });
        }
    }

    /// Bytes currently occupying memory (live + unreclaimed garbage).
    fn mem_in_use(&self) -> Bytes;

    /// Number of objects currently in the heap.
    fn len(&self) -> usize;

    /// True when the heap holds no objects.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Exact live bytes at time `at` (oracle knowledge).
    fn live_bytes_at(&mut self, at: VirtualTime) -> Bytes;

    /// Performs a scavenge at time `now` with threatening boundary `tb`.
    fn scavenge(&mut self, tb: VirtualTime, now: VirtualTime) -> ScavengeOutcome;
}

/// A serializable image of a heap's observable state, for checkpointing.
///
/// Both heap implementations reduce to the same image: the objects still
/// occupying memory (in birth order) plus the lazy-clock high-water mark.
/// Everything else — Fenwick indices, the pending-death queue, slot
/// numbering — is derived data that [`CheckpointHeap::restore`] rebuilds,
/// which is exactly the argument for why a restored heap is observably
/// identical: the incremental heap's own compaction already renumbers
/// slots mid-run without disturbing a single query answer.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HeapSnapshot {
    /// Objects still occupying memory, in birth order.
    pub objects: Vec<SimObject>,
    /// The heap's query-time high-water mark: every death at or before
    /// this instant has been applied.
    pub clock: VirtualTime,
}

/// A [`SimHeap`] that can round-trip its state through a [`HeapSnapshot`].
///
/// The contract checkpoint/resume relies on: for any prefix of a trace,
/// `restore(&h.snapshot())` then replaying the remaining events must
/// produce bit-identical observables (`mem_in_use`, `live_bytes_at`,
/// scavenge outcomes, survival queries) to never having snapshotted at
/// all. The differential suites check this across every policy.
pub trait CheckpointHeap: SimHeap {
    /// Captures the heap's observable state.
    fn snapshot(&self) -> HeapSnapshot;

    /// Rebuilds a heap from a snapshot.
    fn restore(snapshot: &HeapSnapshot) -> Self;
}

/// Sentinel death time for "lives to the end of the trace" in the heap's
/// struct-of-arrays death column — the same convention as the on-disk
/// `DTBCTC01` record format. No real allocation clock reaches it, so the
/// branch-free `death <= now` comparison treats immortals as never dead.
const NO_DEATH: u64 = u64::MAX;

/// Slot-count floor below which the heap never compacts: rebasing a tiny
/// index saves nothing, and the floor keeps short runs on the exact
/// append-only fast path.
const COMPACT_MIN_SLOTS: usize = 1024;

/// Birth-ordered heap with an exact lifetime oracle, maintained
/// incrementally (see the module docs for the index design).
#[derive(Clone, Debug)]
pub struct OracleHeap {
    /// Birth time per global slot (allocation-clock bytes), append-only.
    /// Stored as raw `u64` so block inserts append with one `memcpy`
    /// straight from the event source's birth column.
    births: Vec<u64>,
    /// Live and dead-but-unreclaimed bytes per global slot, as one paired
    /// index: a death moves bytes live→dead in a single tree walk, and a
    /// scavenge's full byte accounting is one paired prefix descent.
    index: PairedFenwick,
    /// Future deaths awaiting application: `(death, slot, size)`,
    /// unordered. Only populated from the staged suffix at clock
    /// advances, and only with deaths that are still in the future then —
    /// which keeps the set small (objects outliving the scavenge after
    /// their birth), so draining it is one linear sweep instead of
    /// per-entry priority-queue traffic. Live→dead moves commute, so the
    /// sweep's arbitrary order leaves every aggregate bit-identical.
    pending: Vec<(u64, u32, u32)>,
    /// Smallest death time in `pending` (`NO_DEATH` when empty): lets an
    /// advance skip the sweep entirely while no pending death has come
    /// due.
    pending_min: u64,
    /// Watermark into the `present_*` columns: rows at or above it were
    /// appended since the last clock advance and have not had their death
    /// examined yet (the staged suffix of the module docs' two-stage
    /// lazy-death design). Rows below it are immortal, already moved to
    /// the dead component, or sitting in `pending`.
    staged_lo: usize,
    /// Global slot per object still occupying memory, ordered by slot.
    /// The three `present_*` vectors are parallel struct-of-arrays
    /// columns: keeping sizes and deaths in their own flat arrays is what
    /// lets the scavenge walk's dead-byte pass autovectorize
    /// ([`dtb_core::soa::dead_tail_stats`]).
    present_slots: Vec<u32>,
    /// Size in bytes per present object (parallel to `present_slots`).
    present_sizes: Vec<u32>,
    /// Oracle death time per present object ([`NO_DEATH`] = immortal;
    /// parallel to `present_slots`).
    present_deaths: Vec<u64>,
    /// Reusable slot batch for the Fenwick [`Fenwick::add_many`] /
    /// [`Fenwick::sub_many`] updates (death application, scavenge
    /// removals). Warm-up sizes it; steady state never reallocates.
    scratch_slots: Vec<u32>,
    /// Byte deltas paired with `scratch_slots`.
    scratch_deltas: Vec<u64>,
    /// High-water mark of query time: every death `<= clock` has been
    /// moved from `live` to `dead`.
    clock: VirtualTime,
}

impl Default for OracleHeap {
    fn default() -> OracleHeap {
        OracleHeap::with_capacity(0)
    }
}

impl OracleHeap {
    /// Creates an empty heap.
    pub fn new() -> OracleHeap {
        OracleHeap::default()
    }

    /// Creates an empty heap with index capacity for `n` objects.
    pub fn with_capacity(n: usize) -> OracleHeap {
        OracleHeap {
            births: Vec::with_capacity(n),
            index: PairedFenwick::with_capacity(n),
            pending: Vec::new(),
            pending_min: NO_DEATH,
            staged_lo: 0,
            present_slots: Vec::with_capacity(n),
            present_sizes: Vec::with_capacity(n),
            present_deaths: Vec::with_capacity(n),
            scratch_slots: Vec::new(),
            scratch_deltas: Vec::new(),
            clock: VirtualTime::ZERO,
        }
    }

    /// Inserts a newly allocated object.
    ///
    /// Births must arrive strictly increasing (the trace drives
    /// insertions in allocation order), and sizes must be nonzero (the
    /// trace layer rejects zero-sized allocations as
    /// [`TraceError::ZeroSizedAlloc`](dtb_trace::TraceError); the scavenge
    /// walk relies on every dead resident being visible to the byte
    /// indices). Violations panic in debug builds.
    pub fn insert(&mut self, obj: SimObject) {
        if let Some(&last) = self.births.last() {
            debug_assert!(
                obj.birth.as_u64() > last,
                "births must be strictly increasing: {:?} after {last}",
                obj.birth,
            );
        }
        debug_assert!(obj.size > 0, "zero-sized objects are rejected upstream");
        let slot = self.births.len();
        debug_assert!(slot <= u32::MAX as usize, "slot index exceeds u32");
        let slot = slot as u32;
        self.births.push(obj.birth.as_u64());
        self.index.push(obj.size as u64, 0);
        self.present_slots.push(slot);
        self.present_sizes.push(obj.size);
        self.present_deaths
            .push(obj.death.map_or(NO_DEATH, VirtualTime::as_u64));
        // No death bookkeeping here: the row just appended sits in the
        // staged suffix above `staged_lo`, and the next clock advance
        // examines it — including an object already past its death on the
        // lazy clock (one can die the instant it is born), which the
        // staged scan applies before answering any query.
    }

    /// Inserts a whole block of objects from struct-of-arrays columns
    /// (death times use the [`NO_DEATH`] sentinel for immortals, as in
    /// the `DTBCTC01` record format).
    ///
    /// Observably identical to inserting the objects one at a time —
    /// the Fenwick tree shape is a pure function of the slot values — but
    /// the index appends become bulk [`Fenwick::extend`] builds and any
    /// already-past deaths apply as one batched update. The block engine's
    /// fast path feeds validated columns straight from the event source.
    pub fn insert_block(&mut self, births: &[u64], sizes: &[u32], deaths: &[u64]) {
        debug_assert_eq!(births.len(), sizes.len());
        debug_assert_eq!(births.len(), deaths.len());
        #[cfg(debug_assertions)]
        for (i, &b) in births.iter().enumerate() {
            let prev = if i == 0 {
                self.births.last().copied()
            } else {
                Some(births[i - 1])
            };
            debug_assert!(
                prev.is_none_or(|p| b > p),
                "births must be strictly increasing"
            );
            debug_assert!(sizes[i] > 0, "zero-sized objects are rejected upstream");
        }
        let base = self.births.len();
        debug_assert!(
            base + births.len() <= u32::MAX as usize + 1,
            "slot index exceeds u32"
        );
        self.births.extend_from_slice(births);
        self.index.extend_live(sizes.iter().map(|&s| s as u64));
        self.present_slots
            .extend((base..base + births.len()).map(|s| s as u32));
        self.present_sizes.extend_from_slice(sizes);
        self.present_deaths.extend_from_slice(deaths);
        // Death bookkeeping is deferred wholesale: the appended rows are
        // the staged suffix, examined once by the next clock advance.
    }

    /// Moves every death at or before `now` from the live index to the
    /// dead index. Amortized O(log n) per object over the whole run —
    /// and O(1) heap traffic for the (typical) object whose death has
    /// already passed by the first clock advance after its birth.
    fn advance_clock(&mut self, now: VirtualTime) {
        let n = self.present_deaths.len();
        let advanced = now > self.clock;
        if !advanced && self.staged_lo >= n {
            return;
        }
        if advanced {
            self.clock = now;
        }
        let now_u = self.clock.as_u64();
        // Scan the staged suffix first — one pass over the resident
        // columns appended since the last drain. Deaths already at or
        // before `now` apply directly (live→dead moves on distinct slots
        // commute, so the unordered batch is equivalent to sorted
        // application); only future deaths enter the priority queue. Both
        // drains accumulate into one slot/delta batch so the paired tree
        // walks run back to back over hot cache lines instead of
        // interleaving with heap pops. Note the scan runs even when the
        // clock does not move: a freshly inserted object may already be
        // past its death on the lazy clock (one can die the instant it is
        // born) and must reach the dead component before any query.
        self.scratch_slots.clear();
        self.scratch_deltas.clear();
        for i in self.staged_lo..n {
            let d = self.present_deaths[i];
            if d == NO_DEATH {
                continue;
            }
            let slot = self.present_slots[i];
            let size = self.present_sizes[i];
            if d <= now_u {
                self.scratch_slots.push(slot);
                self.scratch_deltas.push(size as u64);
            } else {
                self.pending.push((d, slot, size));
                self.pending_min = self.pending_min.min(d);
            }
        }
        self.staged_lo = n;
        if self.pending_min <= now_u {
            // Sweep the due deaths out in place (swap-remove keeps the
            // sweep linear); recompute the minimum from the survivors.
            let mut min = NO_DEATH;
            let mut i = 0;
            while i < self.pending.len() {
                let (d, slot, size) = self.pending[i];
                if d <= now_u {
                    self.scratch_slots.push(slot);
                    self.scratch_deltas.push(size as u64);
                    self.pending.swap_remove(i);
                } else {
                    min = min.min(d);
                    i += 1;
                }
            }
            self.pending_min = min;
        }
        if !self.scratch_slots.is_empty() {
            self.index
                .move_to_dead_many(&self.scratch_slots, &self.scratch_deltas);
        }
    }

    /// Bytes currently occupying memory (live + unreclaimed garbage).
    pub fn mem_in_use(&self) -> Bytes {
        // Deaths only move bytes between the two components, so the sum
        // is exact regardless of how far the lazy clock has advanced.
        Bytes::new(self.index.live_total() + self.index.dead_total())
    }

    /// Number of objects currently in the heap.
    pub fn len(&self) -> usize {
        self.present_slots.len()
    }

    /// True when the heap holds no objects.
    pub fn is_empty(&self) -> bool {
        self.present_slots.is_empty()
    }

    /// Exact live bytes at time `at` (oracle knowledge), O(deaths since
    /// the last query).
    ///
    /// Query times must be monotonically non-decreasing across
    /// [`OracleHeap::live_bytes_at`], [`OracleHeap::scavenge`], and
    /// [`OracleHeap::survival_snapshot`].
    pub fn live_bytes_at(&mut self, at: VirtualTime) -> Bytes {
        self.advance_clock(at);
        Bytes::new(self.index.live_total())
    }

    /// First global slot born strictly after `tb`.
    fn boundary_slot(&self, tb: VirtualTime) -> usize {
        let tb = tb.as_u64();
        self.births.partition_point(|&b| b <= tb)
    }

    /// Performs a scavenge at time `now` with threatening boundary `tb`:
    /// traces live threatened objects, reclaims dead threatened objects,
    /// and leaves immune objects untouched.
    ///
    /// Byte accounting is answered by the Fenwick indices in O(log n);
    /// only the compaction of the dead threatened residents walks
    /// objects, so the whole call is O(dead tail + log n) and performs no
    /// heap allocation. Returns the outcome; afterwards
    /// [`OracleHeap::mem_in_use`] reflects the surviving storage.
    pub fn scavenge(&mut self, tb: VirtualTime, now: VirtualTime) -> ScavengeOutcome {
        self.advance_clock(now);
        let split = self.boundary_slot(tb);
        // One paired descent answers the whole byte accounting: the
        // threatened live suffix (traced), the threatened dead suffix
        // (reclaimed), and the immune dead prefix (tenured garbage).
        let immune = self.index.prefix_pair(split);
        let traced = Bytes::new(self.index.live_total() - immune[0]);
        let reclaimed = Bytes::new(self.index.dead_total() - immune[1]);
        let tenured_garbage = Bytes::new(immune[1]);

        // Compact the threatened residents in place: survivors stay (in
        // slot order), dead objects leave the dead index and the heap.
        // The walk is narrowed to the slot range that actually holds
        // threatened dead bytes — every resident (sizes are nonzero)
        // outside it is live or immune and keeps its position, except the
        // all-live tail beyond the last dead slot, which shifts left in
        // one move. With nothing to reclaim the walk vanishes entirely,
        // which is what lets a deep boundary (`FULL`, `DTBMEM`) scavenge
        // without re-inspecting its thousands of live survivors.
        if !reclaimed.is_zero() {
            // First threatened slot holding dead bytes: descend to the
            // largest count whose dead-prefix is still ≤ the immune
            // prefix. Likewise the last dead slot overall (it is ≥ split
            // because `dead.suffix(split) > 0`).
            let first_dead = self.index.lower_bound_dead(immune[1]);
            let last_dead = self.index.lower_bound_dead(self.index.dead_total() - 1);
            debug_assert!(first_dead >= split);
            let lo = self
                .present_slots
                .partition_point(|&s| (s as usize) < first_dead);
            let hi = self
                .present_slots
                .partition_point(|&s| (s as usize) <= last_dead);
            let now_u = now.as_u64();
            // Pass 1: one branch-free sweep over the death/size columns
            // answers how much of the narrowed range is dead — it must be
            // exactly the reclaimed suffix — and whether the whole range
            // can be removed wholesale.
            let (walk_dead, dead_count) = dtb_core::soa::dead_tail_stats(
                &self.present_deaths[lo..hi],
                &self.present_sizes[lo..hi],
                now_u,
            );
            debug_assert_eq!(walk_dead, reclaimed.as_u64());
            // Pass 2: collect the dead slots (for one batched dead-index
            // update) and compact the survivors in place.
            self.scratch_slots.clear();
            self.scratch_deltas.clear();
            if dead_count == hi - lo {
                // The whole range is dead — no per-resident filtering.
                self.scratch_slots
                    .extend_from_slice(&self.present_slots[lo..hi]);
                self.scratch_deltas
                    .extend(self.present_sizes[lo..hi].iter().map(|&s| s as u64));
                self.present_slots.drain(lo..hi);
                self.present_sizes.drain(lo..hi);
                self.present_deaths.drain(lo..hi);
            } else {
                let mut write = lo;
                for read in lo..hi {
                    let d = self.present_deaths[read];
                    if d <= now_u {
                        self.scratch_slots.push(self.present_slots[read]);
                        self.scratch_deltas.push(self.present_sizes[read] as u64);
                    } else {
                        self.present_slots[write] = self.present_slots[read];
                        self.present_sizes[write] = self.present_sizes[read];
                        self.present_deaths[write] = d;
                        write += 1;
                    }
                }
                if write < hi {
                    let removed = hi - write;
                    let len = self.present_slots.len() - removed;
                    self.present_slots.copy_within(hi.., write);
                    self.present_sizes.copy_within(hi.., write);
                    self.present_deaths.copy_within(hi.., write);
                    self.present_slots.truncate(len);
                    self.present_sizes.truncate(len);
                    self.present_deaths.truncate(len);
                }
            }
            self.index
                .sub_dead_many(&self.scratch_slots, &self.scratch_deltas);
            // The advance above examined every staged row; the removals
            // only shrank the columns, so the watermark follows the end.
            self.staged_lo = self.present_slots.len();
        }

        debug_assert_eq!(
            self.index.suffix_pair(split)[1],
            0,
            "all threatened dead reclaimed"
        );
        debug_assert!(
            self.present_slots
                .iter()
                .zip(&self.present_deaths)
                .all(|(&s, &d)| (s as usize) < split || d > now.as_u64()),
            "no dead threatened resident left behind"
        );
        let outcome = ScavengeOutcome {
            traced,
            reclaimed,
            surviving: self.mem_in_use(),
            tenured_garbage,
        };
        // Dead-prefix compaction: once reclaimed slots dominate the index,
        // rebase it onto the residents so index memory tracks the
        // *resident* set instead of every object ever born — the property
        // that lets a streaming source run in O(live set) memory.
        if self.births.len() >= COMPACT_MIN_SLOTS.max(2 * self.present_slots.len()) {
            self.compact();
        }
        outcome
    }

    /// Rebases the slot space onto the surviving residents, discarding
    /// slots of reclaimed objects.
    ///
    /// Every observable is preserved bit-for-bit: reclaimed slots hold
    /// zero bytes in both Fenwick trees, so dropping their births shifts
    /// every `partition_point` split without changing any prefix/suffix
    /// sum. The rebuild reuses the existing buffers (`clear` keeps
    /// capacity; the birth copy moves entries strictly forward), so the
    /// scavenge path stays allocation-free (see
    /// `crates/sim/tests/zero_alloc.rs`).
    fn compact(&mut self) {
        let n = self.present_slots.len();
        // Scavenge advanced the clock, which drained the staged suffix.
        debug_assert_eq!(self.staged_lo, n, "compaction with staged deaths");
        self.pending.clear();
        self.pending_min = NO_DEATH;
        let clock = self.clock.as_u64();
        for new_slot in 0..n {
            let old_slot = self.present_slots[new_slot];
            let size = self.present_sizes[new_slot];
            let death = self.present_deaths[new_slot];
            // Residents are slot-ordered, so `new_slot <= old_slot` and
            // the in-place copy never reads an already-overwritten entry.
            self.births[new_slot] = self.births[old_slot as usize];
            self.present_slots[new_slot] = new_slot as u32;
            // A resident past its death is dead-but-immune (tenured
            // garbage) and carries no pending entry; only future mortals
            // re-enter the pending set.
            if death > clock && death != NO_DEATH {
                self.pending.push((death, new_slot as u32, size));
                self.pending_min = self.pending_min.min(death);
            }
        }
        self.births.truncate(n);
        // One bulk bottom-up build replaces a per-resident push descent;
        // dead-but-immune bytes land in the dead component, everything
        // else in the live component, exactly as incremental maintenance
        // left them.
        let index = &mut self.index;
        let sizes = &self.present_sizes[..n];
        let deaths = &self.present_deaths[..n];
        index.rebuild_pairs(sizes.iter().zip(deaths).map(|(&size, &death)| {
            if death <= clock {
                [0, size as u64]
            } else {
                [size as u64, 0]
            }
        }));
    }

    /// Number of slots in the heap's index (≥ [`OracleHeap::len`];
    /// bounded by compaction, see [`OracleHeap::scavenge`]).
    pub fn index_len(&self) -> usize {
        self.births.len()
    }

    /// Borrows a survival snapshot for policy boundary decisions at time
    /// `now`: answers "how much live storage was born after `tb`" in
    /// O(log n) per query, without allocating.
    pub fn survival_snapshot(&mut self, now: VirtualTime) -> SurvivalSnapshot<'_> {
        self.advance_clock(now);
        SurvivalSnapshot {
            births: &self.births,
            index: &self.index,
        }
    }

    /// Iterates the objects still in the heap, in birth order (tests).
    pub fn iter_objects(&self) -> impl ExactSizeIterator<Item = SimObject> + '_ {
        self.present_slots
            .iter()
            .zip(&self.present_sizes)
            .zip(&self.present_deaths)
            .map(|((&slot, &size), &death)| SimObject {
                birth: VirtualTime::from_bytes(self.births[slot as usize]),
                size,
                death: (death != NO_DEATH).then(|| VirtualTime::from_bytes(death)),
            })
    }
}

/// An O(log n) oracle for "live bytes born after `tb`", borrowed from the
/// heap's live index at one scavenge decision point. Construction is
/// allocation-free — the view reads the incrementally maintained index
/// directly.
#[derive(Clone, Copy, Debug)]
pub struct SurvivalSnapshot<'a> {
    births: &'a [u64],
    index: &'a PairedFenwick,
}

impl SurvivalEstimator for SurvivalSnapshot<'_> {
    fn surviving_born_after(&self, tb: VirtualTime) -> Bytes {
        let tb = tb.as_u64();
        let idx = self.births.partition_point(|&b| b <= tb);
        Bytes::new(self.index.suffix_pair(idx)[0])
    }

    /// The inverse query as a single descent of the live-bytes Fenwick
    /// tree: O(log n) total, instead of the default's one O(log n)
    /// survival probe per candidate.
    ///
    /// A boundary `t` fits iff `live.suffix(slots born ≤ t) <= trace_max`,
    /// i.e. iff at least `K = live.total() - trace_max` live bytes were
    /// born at or before `t`. One [`Fenwick::lower_bound`] descent finds
    /// `s*`, the smallest slot count covering `K` live bytes; a boundary
    /// admits `s*` slots exactly when it is at or past the birth of slot
    /// `s* - 1`, so the answer is the first candidate at or after that
    /// birth time — the same suffix of fitting candidates the default
    /// scan walks to, located by binary search instead.
    fn oldest_boundary_within(
        &self,
        trace_max: Bytes,
        candidates: BoundaryCandidates<'_>,
    ) -> Option<VirtualTime> {
        // One call, one descent: the probe count is what distinguishes
        // this implementation from the default scan in telemetry.
        dtb_core::obs::note_inverse_query(1);
        let total = self.index.live_total();
        let budget = trace_max.as_u64();
        if total <= budget {
            // Every boundary fits, even one before the first birth.
            return candidates.first();
        }
        // Smallest count with prefix ≥ K, via largest count with
        // prefix ≤ K - 1 (K ≥ 1 here, and the count is ≤ len because
        // K ≤ total).
        let s_star = self.index.lower_bound_live(total - budget - 1) + 1;
        candidates.first_at_or_after(VirtualTime::from_bytes(self.births[s_star - 1]))
    }
}

impl SurvivalLender for OracleHeap {
    type Survival<'a> = SurvivalSnapshot<'a>;

    fn survival_view(&mut self, now: VirtualTime) -> SurvivalSnapshot<'_> {
        self.survival_snapshot(now)
    }
}

impl CheckpointHeap for OracleHeap {
    fn snapshot(&self) -> HeapSnapshot {
        HeapSnapshot {
            objects: self.iter_objects().collect(),
            clock: self.clock,
        }
    }

    fn restore(snapshot: &HeapSnapshot) -> OracleHeap {
        // Reinserting the residents renumbers them onto fresh slots
        // 0..n — the same rebasing `compact` performs mid-run, which
        // preserves every observable. Advancing the clock afterwards
        // re-applies the deaths the original heap had already drained.
        let mut heap = OracleHeap::with_capacity(snapshot.objects.len());
        for obj in &snapshot.objects {
            heap.insert(*obj);
        }
        heap.advance_clock(snapshot.clock);
        heap
    }
}

impl SimHeap for OracleHeap {
    const EPOCH_PARALLEL: bool = true;

    fn with_capacity(n: usize) -> OracleHeap {
        OracleHeap::with_capacity(n)
    }

    fn insert(&mut self, obj: SimObject) {
        OracleHeap::insert(self, obj);
    }

    fn insert_block(&mut self, births: &[u64], sizes: &[u32], deaths: &[u64]) {
        OracleHeap::insert_block(self, births, sizes, deaths);
    }

    fn mem_in_use(&self) -> Bytes {
        OracleHeap::mem_in_use(self)
    }

    fn len(&self) -> usize {
        OracleHeap::len(self)
    }

    fn live_bytes_at(&mut self, at: VirtualTime) -> Bytes {
        OracleHeap::live_bytes_at(self, at)
    }

    fn scavenge(&mut self, tb: VirtualTime, now: VirtualTime) -> ScavengeOutcome {
        OracleHeap::scavenge(self, tb, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(birth: u64, size: u32, death: Option<u64>) -> SimObject {
        SimObject {
            birth: VirtualTime::from_bytes(birth),
            size,
            death: death.map(VirtualTime::from_bytes),
        }
    }

    fn t(v: u64) -> VirtualTime {
        VirtualTime::from_bytes(v)
    }

    #[test]
    fn insert_tracks_memory() {
        let mut h = OracleHeap::new();
        h.insert(obj(10, 100, None));
        h.insert(obj(20, 50, Some(30)));
        assert_eq!(h.mem_in_use(), Bytes::new(150));
        assert_eq!(h.len(), 2);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn out_of_order_insert_rejected() {
        let mut h = OracleHeap::new();
        h.insert(obj(20, 1, None));
        h.insert(obj(10, 1, None));
    }

    #[test]
    fn full_scavenge_reclaims_all_dead() {
        let mut h = OracleHeap::new();
        h.insert(obj(10, 100, None)); // live forever
        h.insert(obj(20, 50, Some(30))); // dead at 40
        h.insert(obj(35, 25, Some(100))); // still live at 40
        let out = h.scavenge(VirtualTime::ZERO, t(40));
        assert_eq!(out.traced, Bytes::new(125));
        assert_eq!(out.reclaimed, Bytes::new(50));
        assert_eq!(out.surviving, Bytes::new(125));
        assert_eq!(out.tenured_garbage, Bytes::ZERO);
        assert_eq!(h.mem_in_use(), Bytes::new(125));
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn boundary_protects_dead_immune_objects() {
        let mut h = OracleHeap::new();
        h.insert(obj(10, 100, Some(15))); // dead, immune at tb=20
        h.insert(obj(20, 50, Some(25))); // dead, immune (birth == tb ⇒ immune)
        h.insert(obj(30, 25, Some(35))); // dead, threatened
        h.insert(obj(40, 10, None)); // live, threatened
        let out = h.scavenge(t(20), t(50));
        assert_eq!(out.traced, Bytes::new(10));
        assert_eq!(out.reclaimed, Bytes::new(25));
        // Dead-but-immune objects survive as tenured garbage.
        assert_eq!(out.tenured_garbage, Bytes::new(150));
        assert_eq!(out.surviving, Bytes::new(160));
        assert_eq!(h.mem_in_use(), Bytes::new(160));
    }

    #[test]
    fn untenuring_reclaims_previously_immune_garbage() {
        let mut h = OracleHeap::new();
        h.insert(obj(10, 100, Some(15)));
        h.insert(obj(20, 50, None));
        // First scavenge with a young-protecting boundary leaves garbage.
        let first = h.scavenge(t(15), t(25));
        assert_eq!(first.tenured_garbage, Bytes::new(100));
        assert_eq!(h.mem_in_use(), Bytes::new(150));
        // Second scavenge moves the boundary back — the DTB untenuring move.
        let second = h.scavenge(VirtualTime::ZERO, t(30));
        assert_eq!(second.reclaimed, Bytes::new(100));
        assert_eq!(second.tenured_garbage, Bytes::ZERO);
        assert_eq!(h.mem_in_use(), Bytes::new(50));
    }

    #[test]
    fn scavenge_accounting_invariant() {
        let mut h = OracleHeap::new();
        for i in 0..100u64 {
            h.insert(obj(
                (i + 1) * 10,
                8,
                if i % 3 == 0 { Some((i + 2) * 10) } else { None },
            ));
        }
        let before = h.mem_in_use();
        let out = h.scavenge(t(300), t(1000));
        assert_eq!(out.surviving + out.reclaimed, before);
    }

    #[test]
    fn survival_snapshot_matches_naive_query() {
        let mut h = OracleHeap::new();
        for i in 0..50u64 {
            h.insert(obj(
                (i + 1) * 7,
                (i % 13 + 1) as u32,
                if i % 2 == 0 {
                    Some((i + 1) * 7 + 40)
                } else {
                    None
                },
            ));
        }
        let now = t(200);
        // Expected answers from a plain filter, computed before the
        // snapshot borrows the heap.
        let queries = [0u64, 6, 7, 50, 111, 200, 350, 1000];
        let expected: Vec<u64> = queries
            .iter()
            .map(|&tb| {
                h.iter_objects()
                    .filter(|o| o.birth > t(tb) && o.is_live_at(now))
                    .map(|o| o.size as u64)
                    .sum()
            })
            .collect();
        let snap = h.survival_snapshot(now);
        for (&tb, &want) in queries.iter().zip(&expected) {
            assert_eq!(
                snap.surviving_born_after(t(tb)),
                Bytes::new(want),
                "tb={tb}"
            );
        }
    }

    #[test]
    fn inverse_query_matches_default_scan() {
        use dtb_core::history::{ScavengeHistory, ScavengeRecord};

        let mut h = OracleHeap::new();
        for i in 0..60u64 {
            h.insert(obj(
                (i + 1) * 11,
                (i % 17 + 1) as u32,
                if i % 3 == 0 {
                    Some((i + 1) * 11 + 90)
                } else {
                    None
                },
            ));
        }
        let now = t(700);
        let history: ScavengeHistory = (1..=6)
            .map(|k| ScavengeRecord {
                at: t(k * 100),
                boundary: VirtualTime::ZERO,
                traced: Bytes::ZERO,
                surviving: Bytes::ZERO,
                reclaimed: Bytes::ZERO,
                mem_before: Bytes::ZERO,
            })
            .collect();
        let snap = h.survival_snapshot(now);
        for budget in [0u64, 1, 5, 17, 60, 150, 300, 100_000] {
            for from in [0u64, 150, 250, 450, 650, 900] {
                let candidates = history.candidates_at_or_after(t(from));
                // The default scan, evaluated against the same snapshot.
                let want = candidates
                    .times()
                    .find(|&c| snap.surviving_born_after(c) <= Bytes::new(budget));
                let got = snap.oldest_boundary_within(Bytes::new(budget), candidates);
                assert_eq!(got, want, "budget={budget} from={from}");
            }
        }
    }

    #[test]
    fn empty_heap_scavenge_is_noop() {
        let mut h = OracleHeap::new();
        let out = h.scavenge(VirtualTime::ZERO, t(10));
        assert_eq!(out, ScavengeOutcome::default());
        assert!(h.is_empty());
    }

    #[test]
    fn live_bytes_at_uses_oracle() {
        let mut h = OracleHeap::new();
        h.insert(obj(10, 100, Some(50)));
        h.insert(obj(20, 30, None));
        assert_eq!(h.live_bytes_at(t(40)), Bytes::new(130));
        assert_eq!(h.live_bytes_at(t(50)), Bytes::new(30));
    }

    #[test]
    fn insert_after_clock_advance_applies_past_death_immediately() {
        let mut h = OracleHeap::new();
        h.insert(obj(10, 100, None));
        assert_eq!(h.live_bytes_at(t(40)), Bytes::new(100));
        // Born at 40 and dead the same instant the clock already reached.
        h.insert(obj(40, 7, Some(40)));
        assert_eq!(h.live_bytes_at(t(40)), Bytes::new(100));
        assert_eq!(h.mem_in_use(), Bytes::new(107));
        let out = h.scavenge(VirtualTime::ZERO, t(40));
        assert_eq!(out.reclaimed, Bytes::new(7));
        assert_eq!(h.mem_in_use(), Bytes::new(100));
    }

    #[test]
    fn compaction_bounds_the_index_under_churn() {
        let mut h = OracleHeap::new();
        let mut clock = 0u64;
        let mut max_index = 0usize;
        // 8k short-lived objects, scavenged every 256 births: without
        // compaction the index would end at 8_000 slots.
        for i in 0..8_000u64 {
            clock += 16;
            h.insert(obj(clock, 16, Some(clock + 64)));
            if i % 256 == 255 {
                h.scavenge(VirtualTime::ZERO, t(clock));
                max_index = max_index.max(h.index_len());
            }
        }
        assert!(
            max_index <= 2 * COMPACT_MIN_SLOTS,
            "index grew to {max_index} slots under pure churn"
        );
        assert!(h.index_len() >= h.len());
    }

    #[test]
    fn compaction_preserves_every_observable() {
        // Mirror a churn-heavy run against a never-compacting twin and a
        // NaiveHeap; every query must agree bit-for-bit even though the
        // compacting heap rebases its slot space many times over.
        let mut fast = OracleHeap::new();
        let mut slow = naive::NaiveHeap::new();
        let mut clock = 0u64;
        let mut compactions = 0usize;
        for i in 0..6_000u64 {
            clock += i % 29 + 1;
            let o = obj(
                clock,
                (i % 61 + 1) as u32,
                // Mix: quick deaths, slow deaths, immortals.
                match i % 5 {
                    0 | 1 => Some(clock + i % 97 + 1),
                    2 | 3 => Some(clock + 3_000),
                    _ => None,
                },
            );
            fast.insert(o);
            slow.insert(o);
            if i % 100 == 99 {
                let now = t(clock);
                // Alternate deep and shallow boundaries to exercise both
                // tenuring and untenuring over the rebased slot space.
                let tb = if i % 200 == 99 {
                    t(clock.saturating_sub(2_000))
                } else {
                    VirtualTime::ZERO
                };
                assert_eq!(fast.live_bytes_at(now), slow.live_bytes_at(now), "i={i}");
                let before = fast.index_len();
                assert_eq!(fast.scavenge(tb, now), slow.scavenge(tb, now), "i={i}");
                if fast.index_len() < before {
                    compactions += 1;
                }
                assert_eq!(fast.mem_in_use(), slow.mem_in_use(), "i={i}");
                assert_eq!(fast.len(), slow.len(), "i={i}");
                let queries = [0u64, clock / 2, clock.saturating_sub(500), clock];
                let expect: Vec<Bytes> = {
                    let snap_slow = slow.survival_view(now);
                    queries
                        .iter()
                        .map(|&q| snap_slow.surviving_born_after(t(q)))
                        .collect()
                };
                let snap_fast = fast.survival_snapshot(now);
                for (&q, &want) in queries.iter().zip(&expect) {
                    assert_eq!(snap_fast.surviving_born_after(t(q)), want, "i={i} q={q}");
                }
            }
        }
        assert!(compactions > 0, "churn run never triggered a compaction");
    }

    #[test]
    fn insert_block_matches_per_object_inserts() {
        // Block inserts interleaved with clock advances and scavenges
        // must leave the heap observably identical to per-object inserts,
        // including already-past deaths inside a block and immortals.
        let mut block_heap = OracleHeap::new();
        let mut one_heap = OracleHeap::new();
        let mut clock = 0u64;
        for round in 0..40u64 {
            let mut births = Vec::new();
            let mut sizes = Vec::new();
            let mut deaths = Vec::new();
            for i in 0..(round % 7 + 1) * 9 {
                clock += i % 23 + 1;
                births.push(clock);
                sizes.push((i % 57 + 1) as u32);
                deaths.push(match i % 4 {
                    // Dies before the next query point (often before the
                    // heap clock even reaches it).
                    0 => clock + i % 5,
                    1 => clock + 2_000,
                    2 => clock.saturating_sub(0) + 1, // dies immediately after birth
                    _ => u64::MAX,
                });
            }
            block_heap.insert_block(&births, &sizes, &deaths);
            for i in 0..births.len() {
                one_heap.insert(SimObject {
                    birth: t(births[i]),
                    size: sizes[i],
                    death: (deaths[i] != u64::MAX).then(|| t(deaths[i])),
                });
            }
            let now = t(clock);
            assert_eq!(block_heap.mem_in_use(), one_heap.mem_in_use());
            assert_eq!(block_heap.live_bytes_at(now), one_heap.live_bytes_at(now));
            if round % 5 == 4 {
                let tb = t(clock.saturating_sub(1_500));
                assert_eq!(
                    block_heap.scavenge(tb, now),
                    one_heap.scavenge(tb, now),
                    "round={round}"
                );
                assert_eq!(block_heap.len(), one_heap.len());
                let a: Vec<SimObject> = block_heap.iter_objects().collect();
                let b: Vec<SimObject> = one_heap.iter_objects().collect();
                assert_eq!(a, b, "round={round}");
            }
        }
    }

    #[test]
    fn matches_naive_heap_on_interleaved_operations() {
        let mut fast = OracleHeap::new();
        let mut slow = naive::NaiveHeap::new();
        let mut clock = 0u64;
        for i in 0..400u64 {
            clock += i % 17 + 1;
            let o = obj(
                clock,
                (i % 97 + 1) as u32,
                if i % 3 != 2 {
                    Some(clock + (i % 13) * 50)
                } else {
                    None
                },
            );
            fast.insert(o);
            slow.insert(o);
            if i % 40 == 39 {
                let now = t(clock);
                let tb = t(clock.saturating_sub(300));
                assert_eq!(fast.live_bytes_at(now), slow.live_bytes_at(now), "i={i}");
                assert_eq!(fast.scavenge(tb, now), slow.scavenge(tb, now), "i={i}");
                assert_eq!(fast.mem_in_use(), slow.mem_in_use(), "i={i}");
                assert_eq!(fast.len(), slow.len(), "i={i}");
            }
        }
    }
}
