//! Durable run journal: append-only, fsync'd, checksummed cell records.
//!
//! An [`Evaluation`](crate::exec::Evaluation) given a journal directory
//! writes one line per completed cell to `run.journal`, each fsync'd
//! before the next cell starts, so a crash — even `SIGKILL` — loses at
//! most the cell that was in flight. Resuming
//! ([`Evaluation::resume`](crate::exec::Evaluation::resume)) reads the
//! journal back, skips every completed cell, recomputes failed ones, and
//! appends the new outcomes to the same file.
//!
//! # On-disk format
//!
//! Plain text, one record per line:
//!
//! ```text
//! {checksum:016x} H {header json}
//! {checksum:016x} C {cell json}
//! ...
//! ```
//!
//! The checksum is FNV-1a ([`dtb_trace::ckp::checksum`]) over the JSON
//! bytes. The first line is the [`JournalHeader`] (matrix shape and
//! configuration, guarding against resuming someone else's journal);
//! every further line is a [`JournalCell`]. A torn final line — the
//! signature of a crash mid-write — is silently dropped and truncated
//! away on resume; a corrupt *interior* line is a typed
//! [`CkpError`], never a panic.

use crate::engine::{SimConfig, SimRun};
use dtb_core::policy::PolicyConfig;
use dtb_trace::ckp::{checksum, CkpError};
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// File name of the journal inside its run directory.
pub const JOURNAL_FILE: &str = "run.journal";

/// Format version written by this build.
pub const JOURNAL_VERSION: u32 = 1;

/// The journal file inside a run directory.
pub fn journal_path(dir: impl AsRef<Path>) -> PathBuf {
    dir.as_ref().join(JOURNAL_FILE)
}

/// First line of every journal: the shape and configuration of the
/// evaluation that wrote it. A resume refuses a journal whose header
/// disagrees with the configured evaluation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JournalHeader {
    /// Format version ([`JOURNAL_VERSION`]).
    pub version: u32,
    /// Column (workload) names, in evaluation order.
    pub columns: Vec<String>,
    /// Row labels, in evaluation order.
    pub rows: Vec<String>,
    /// The policy constraint configuration of the run.
    pub policy: PolicyConfig,
    /// The simulation configuration of the run.
    pub sim: SimConfig,
}

/// One journal line: the final outcome of one matrix cell.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JournalCell {
    /// Column (workload) name of the cell.
    pub column: String,
    /// Row label of the cell.
    pub row: String,
    /// How many attempts the cell took (1 = first try).
    pub attempts: u32,
    /// Wall-clock time the cell took, nanoseconds (the vendored serde
    /// has no `Duration`; a `u64` of nanos round-trips exactly).
    pub elapsed_ns: u64,
    /// The completed run, when the cell succeeded.
    pub run: Option<SimRun>,
    /// The stringified failure, when it did not. Failed cells are
    /// *recomputed* on resume, so the string is diagnostic only.
    pub failure: Option<String>,
}

impl JournalCell {
    /// True when this cell completed and its run can be reused verbatim.
    pub fn is_completed(&self) -> bool {
        self.run.is_some()
    }
}

/// One parsed journal line.
#[derive(Clone, Debug, PartialEq)]
pub enum JournalLine {
    /// The header line.
    Header(JournalHeader),
    /// A cell outcome line.
    Cell(JournalCell),
}

/// A fully parsed journal.
#[derive(Clone, Debug, PartialEq)]
pub struct Journal {
    /// The header line.
    pub header: JournalHeader,
    /// Every cell line, in write order. A cell may appear more than once
    /// (a resumed run re-recording a previously failed cell); the last
    /// occurrence wins.
    pub cells: Vec<JournalCell>,
    /// Byte length of the valid prefix of the file. Anything past this
    /// is a torn tail from a crash; [`JournalWriter::resume`] truncates
    /// to it before appending.
    pub valid_len: u64,
}

impl Journal {
    /// The latest recorded outcome for one `(column, row)` cell.
    pub fn cell(&self, column: &str, row: &str) -> Option<&JournalCell> {
        self.cells
            .iter()
            .rev()
            .find(|c| c.column == column && c.row == row)
    }
}

fn io_err(path: &Path, e: std::io::Error) -> CkpError {
    CkpError::Io {
        path: path.to_path_buf(),
        message: e.to_string(),
    }
}

fn encode<T: Serialize>(path: &Path, value: &T) -> Result<String, CkpError> {
    serde_json::to_string(value).map_err(|e| CkpError::BadPayload {
        path: path.to_path_buf(),
        reason: format!("cannot encode journal line: {e}"),
    })
}

fn bad(path: &Path, reason: impl Into<String>) -> CkpError {
    CkpError::BadPayload {
        path: path.to_path_buf(),
        reason: reason.into(),
    }
}

/// Appends checksummed lines to a `run.journal`, fsync'ing each one
/// before returning — once [`JournalWriter::cell`] returns, that cell
/// survives any crash.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
    path: PathBuf,
}

impl JournalWriter {
    /// Starts a fresh journal in `dir` (creating the directory, replacing
    /// any previous journal) and writes the header line.
    ///
    /// # Errors
    ///
    /// [`CkpError::Io`] on filesystem failure; [`CkpError::BadPayload`]
    /// if the header cannot be encoded.
    pub fn create(
        dir: impl AsRef<Path>,
        header: &JournalHeader,
    ) -> Result<JournalWriter, CkpError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        let path = journal_path(dir);
        let file = File::create(&path).map_err(|e| io_err(&path, e))?;
        let mut writer = JournalWriter { file, path };
        let json = encode(&writer.path, header)?;
        writer.line(b'H', &json)?;
        Ok(writer)
    }

    /// Reopens the journal in `dir` for appending, first truncating away
    /// the torn tail (if any) that `journal` — the result of
    /// [`read_journal`] on the same directory — identified.
    ///
    /// # Errors
    ///
    /// [`CkpError::Io`] on filesystem failure.
    pub fn resume(dir: impl AsRef<Path>, journal: &Journal) -> Result<JournalWriter, CkpError> {
        let path = journal_path(dir.as_ref());
        let file = OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| io_err(&path, e))?;
        file.set_len(journal.valid_len)
            .map_err(|e| io_err(&path, e))?;
        file.sync_data().map_err(|e| io_err(&path, e))?;
        Ok(JournalWriter { file, path })
    }

    /// Appends one cell outcome and fsyncs it.
    ///
    /// # Errors
    ///
    /// [`CkpError::Io`] on filesystem failure; [`CkpError::BadPayload`]
    /// if the cell cannot be encoded.
    pub fn cell(&mut self, cell: &JournalCell) -> Result<(), CkpError> {
        let json = encode(&self.path, cell)?;
        self.line(b'C', &json)
    }

    fn line(&mut self, tag: u8, json: &str) -> Result<(), CkpError> {
        let line = format!(
            "{:016x} {} {json}\n",
            checksum(json.as_bytes()),
            tag as char
        );
        self.file
            .write_all(line.as_bytes())
            .map_err(|e| io_err(&self.path, e))?;
        // Durability before progress: the executor only moves to the next
        // cell once this line is on disk.
        self.file.sync_data().map_err(|e| io_err(&self.path, e))
    }
}

/// Parses one journal line: `{16 hex} {tag} {json}`.
fn parse_line(path: &Path, raw: &[u8]) -> Result<JournalLine, CkpError> {
    if raw.len() < 19 {
        return Err(bad(path, "journal line shorter than its framing"));
    }
    let hex = std::str::from_utf8(&raw[..16]).map_err(|_| bad(path, "checksum is not hex"))?;
    let expected = u64::from_str_radix(hex, 16).map_err(|_| bad(path, "checksum is not hex"))?;
    if raw[16] != b' ' || raw[18] != b' ' {
        return Err(bad(path, "journal line framing is malformed"));
    }
    let json_bytes = &raw[19..];
    let found = checksum(json_bytes);
    if found != expected {
        return Err(CkpError::ChecksumMismatch {
            path: path.to_path_buf(),
            expected,
            found,
        });
    }
    let json =
        std::str::from_utf8(json_bytes).map_err(|_| bad(path, "journal payload is not UTF-8"))?;
    match raw[17] {
        b'H' => serde_json::from_str(json)
            .map(JournalLine::Header)
            .map_err(|e| bad(path, format!("cannot decode journal header: {e}"))),
        b'C' => serde_json::from_str(json)
            .map(JournalLine::Cell)
            .map_err(|e| bad(path, format!("cannot decode journal cell: {e}"))),
        other => Err(bad(
            path,
            format!("unknown journal line tag {:?}", other as char),
        )),
    }
}

/// Reads and verifies the journal in `dir`.
///
/// A torn **final** line (crash mid-write) is dropped: the journal is
/// valid up to it and [`Journal::valid_len`] records where the good
/// prefix ends. Damage anywhere *before* the final line is interior
/// corruption and a typed error.
///
/// # Errors
///
/// [`CkpError::Io`] when the file cannot be read (including when it does
/// not exist), [`CkpError::ChecksumMismatch`] / [`CkpError::BadPayload`]
/// on interior corruption, and [`CkpError::BadPayload`] when the first
/// line is not a valid header.
pub fn read_journal(dir: impl AsRef<Path>) -> Result<Journal, CkpError> {
    let path = journal_path(dir.as_ref());
    let data = std::fs::read(&path).map_err(|e| io_err(&path, e))?;

    // Split into (offset, bytes, terminated) lines by hand: the torn-tail
    // rule needs byte offsets and needs to know whether the newline made
    // it to disk.
    let mut header: Option<JournalHeader> = None;
    let mut cells = Vec::new();
    let mut valid_len = 0u64;
    let mut pos = 0usize;
    while pos < data.len() {
        let (line, next, terminated) = match data[pos..].iter().position(|b| *b == b'\n') {
            Some(i) => (&data[pos..pos + i], pos + i + 1, true),
            None => (&data[pos..], data.len(), false),
        };
        let last = next >= data.len();
        match parse_line(&path, line) {
            Ok(parsed) if terminated => {
                match (parsed, header.is_some()) {
                    (JournalLine::Header(h), false) => header = Some(h),
                    (JournalLine::Header(_), true) => {
                        return Err(bad(&path, "second header line in journal"))
                    }
                    (JournalLine::Cell(c), true) => cells.push(c),
                    (JournalLine::Cell(_), false) => {
                        return Err(bad(&path, "journal does not start with a header line"))
                    }
                }
                valid_len = next as u64;
            }
            // A line that parses but never got its newline, or fails to
            // parse *at the very end*: the torn tail of a crash. Ignore.
            Ok(_) | Err(_) if last => break,
            // Corruption with valid data after it is not a torn tail.
            Err(e) => return Err(e),
            Ok(_) => unreachable!("non-last lines are terminated"),
        }
        pos = next;
    }

    let header = header.ok_or_else(|| bad(&path, "journal has no header line"))?;
    Ok(Journal {
        header,
        cells,
        valid_len,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtb_core::policy::PolicyConfig;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dtb-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn header() -> JournalHeader {
        JournalHeader {
            version: JOURNAL_VERSION,
            columns: vec!["CFRAC".into()],
            rows: vec!["FULL".into(), "No GC".into()],
            policy: PolicyConfig::paper(),
            sim: SimConfig::paper(),
        }
    }

    fn cell(row: &str, attempts: u32) -> JournalCell {
        JournalCell {
            column: "CFRAC".into(),
            row: row.into(),
            attempts,
            elapsed_ns: 12_345,
            run: None,
            failure: Some("injected".into()),
        }
    }

    #[test]
    fn journal_round_trips() {
        let dir = temp_dir("rt");
        let mut w = JournalWriter::create(&dir, &header()).unwrap();
        w.cell(&cell("FULL", 1)).unwrap();
        w.cell(&cell("No GC", 2)).unwrap();
        drop(w);
        let j = read_journal(&dir).unwrap();
        assert_eq!(j.header, header());
        assert_eq!(j.cells.len(), 2);
        assert_eq!(j.cells[1].attempts, 2);
        assert_eq!(
            j.valid_len,
            std::fs::metadata(journal_path(&dir)).unwrap().len()
        );
        assert_eq!(j.cell("CFRAC", "No GC"), Some(&j.cells[1]));
        assert_eq!(j.cell("CFRAC", "absent"), None);
    }

    #[test]
    fn torn_tail_is_dropped_and_truncated() {
        let dir = temp_dir("torn");
        let mut w = JournalWriter::create(&dir, &header()).unwrap();
        w.cell(&cell("FULL", 1)).unwrap();
        drop(w);
        let path = journal_path(&dir);
        let clean_len = std::fs::metadata(&path).unwrap().len();
        // Simulate a crash mid-write: half a line, no newline.
        let mut data = std::fs::read(&path).unwrap();
        data.extend_from_slice(b"0123456789abcdef C {\"column\":\"CF");
        std::fs::write(&path, &data).unwrap();

        let j = read_journal(&dir).unwrap();
        assert_eq!(j.cells.len(), 1);
        assert_eq!(j.valid_len, clean_len);

        // Resuming truncates the tail away and appends cleanly.
        let mut w = JournalWriter::resume(&dir, &j).unwrap();
        w.cell(&cell("No GC", 1)).unwrap();
        drop(w);
        let j = read_journal(&dir).unwrap();
        assert_eq!(j.cells.len(), 2);
        assert_eq!(j.cells[1].row, "No GC");
    }

    #[test]
    fn interior_corruption_is_a_typed_error() {
        let dir = temp_dir("interior");
        let mut w = JournalWriter::create(&dir, &header()).unwrap();
        w.cell(&cell("FULL", 1)).unwrap();
        w.cell(&cell("No GC", 1)).unwrap();
        drop(w);
        let path = journal_path(&dir);
        let mut data = std::fs::read(&path).unwrap();
        // Flip a byte in the middle line's payload (not the last line).
        let second_line = data.iter().position(|b| *b == b'\n').unwrap() + 30;
        data[second_line] ^= 0x20;
        std::fs::write(&path, &data).unwrap();
        assert!(matches!(
            read_journal(&dir).unwrap_err(),
            CkpError::ChecksumMismatch { .. } | CkpError::BadPayload { .. }
        ));
    }

    #[test]
    fn missing_or_headerless_journals_are_typed_errors() {
        let dir = temp_dir("missing");
        assert!(matches!(
            read_journal(&dir).unwrap_err(),
            CkpError::Io { .. }
        ));
        std::fs::write(journal_path(&dir), b"").unwrap();
        let err = read_journal(&dir).unwrap_err();
        assert!(matches!(err, CkpError::BadPayload { .. }), "{err}");
    }
}
