//! Typed simulation failures.
//!
//! Everything that can go wrong inside [`simulate`](crate::engine::simulate)
//! surfaces here as data rather than as a panic: a policy refusing to pick
//! a boundary ([`SimError::Policy`]), a runaway cell tripping its watchdog
//! ([`SimError::BudgetExceeded`]), or the engine catching itself violating
//! one of the paper's accounting identities ([`SimError::Invariant`]).
//! The executor wraps these per cell, so one poisoned (program × policy)
//! pair reports a typed failure while the rest of the matrix completes.

use dtb_core::error::PolicyError;
use dtb_core::time::{Bytes, VirtualTime};
use std::fmt;

/// Which watchdog limit a simulation ran into.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BudgetKind {
    /// The cap on processed allocation events.
    Events,
    /// The cap on scavenges performed.
    Scavenges,
}

impl fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BudgetKind::Events => "events",
            BudgetKind::Scavenges => "scavenges",
        })
    }
}

/// An engine self-check that failed.
///
/// These are the identities the simulator is supposed to preserve by
/// construction; a violation means the input trace or a component of the
/// engine is broken, and the containing run cannot be trusted.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum InvariantViolation {
    /// Storage conservation broke: bytes in use plus bytes reclaimed so
    /// far must equal bytes allocated so far (live + tenured garbage +
    /// reclaimed = allocated).
    ConservationBroken {
        /// Bytes currently in the heap (live + tenured garbage).
        in_use: Bytes,
        /// Total bytes reclaimed by all scavenges so far.
        reclaimed: Bytes,
        /// Total bytes allocated so far.
        allocated: Bytes,
    },
    /// One scavenge's books don't balance: surviving + reclaimed must
    /// equal the memory in use when it started.
    ScavengeAccounting {
        /// Bytes surviving the scavenge.
        surviving: Bytes,
        /// Bytes the scavenge reclaimed.
        reclaimed: Bytes,
        /// Bytes in use when the scavenge started.
        mem_before: Bytes,
    },
    /// A policy returned a boundary in the future: TB must lie in
    /// `[0, t_{n-1}]`, never past the current allocation clock.
    BoundaryBeyondNow {
        /// The offending boundary.
        boundary: VirtualTime,
        /// The allocation clock at the scavenge.
        now: VirtualTime,
    },
    /// The trace's births stopped increasing: virtual time must be
    /// strictly monotone along the allocation clock.
    NonMonotoneTime {
        /// The previous object's birth.
        prev: VirtualTime,
        /// The offending (not later) birth.
        next: VirtualTime,
    },
    /// An object's recorded death precedes its birth.
    DeathBeforeBirth {
        /// The object's birth time.
        birth: VirtualTime,
        /// The impossible death time.
        death: VirtualTime,
    },
    /// The configured when-to-collect trigger is malformed: a
    /// memory-growth factor must be finite and greater than 1.0, or the
    /// trigger would fire on every allocation (or never).
    InvalidTrigger {
        /// The rejected growth factor.
        factor: f64,
    },
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantViolation::ConservationBroken {
                in_use,
                reclaimed,
                allocated,
            } => write!(
                f,
                "conservation broken: in-use {} + reclaimed {} != allocated {}",
                in_use.as_u64(),
                reclaimed.as_u64(),
                allocated.as_u64()
            ),
            InvariantViolation::ScavengeAccounting {
                surviving,
                reclaimed,
                mem_before,
            } => write!(
                f,
                "scavenge accounting broken: surviving {} + reclaimed {} != before {}",
                surviving.as_u64(),
                reclaimed.as_u64(),
                mem_before.as_u64()
            ),
            InvariantViolation::BoundaryBeyondNow { boundary, now } => write!(
                f,
                "boundary {} is beyond the allocation clock {}",
                boundary.as_u64(),
                now.as_u64()
            ),
            InvariantViolation::NonMonotoneTime { prev, next } => write!(
                f,
                "birth {} does not advance past previous birth {}",
                next.as_u64(),
                prev.as_u64()
            ),
            InvariantViolation::DeathBeforeBirth { birth, death } => write!(
                f,
                "object dies at {} before its birth at {}",
                death.as_u64(),
                birth.as_u64()
            ),
            InvariantViolation::InvalidTrigger { factor } => write!(
                f,
                "memory-growth trigger factor {factor} is not finite and > 1.0"
            ),
        }
    }
}

/// A simulation that could not complete.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// The boundary policy failed at a scavenge decision.
    Policy {
        /// Allocation clock when the policy was consulted.
        at: VirtualTime,
        /// Zero-based index of the scavenge being attempted.
        collection: usize,
        /// The policy's own account of the failure.
        source: PolicyError,
    },
    /// The per-cell watchdog budget was exhausted.
    BudgetExceeded {
        /// Which limit was hit.
        kind: BudgetKind,
        /// The configured limit.
        limit: u64,
        /// Allocation clock when the limit was exceeded.
        at: VirtualTime,
    },
    /// An engine self-check failed (see [`InvariantViolation`]).
    Invariant {
        /// Allocation clock at the violation.
        at: VirtualTime,
        /// What exactly broke.
        violation: InvariantViolation,
    },
    /// The streaming event source failed mid-run (I/O, corruption, or a
    /// generator fault). In-memory sources never raise this.
    Source {
        /// Allocation clock when the source failed.
        at: VirtualTime,
        /// The source's own account of the failure.
        source: dtb_trace::SourceError,
    },
    /// The run was cancelled from outside through
    /// [`RunControl::cancel`](crate::engine::RunControl) — typically the
    /// executor's deadline watchdog. The simulation state is simply
    /// abandoned; any checkpoint already on disk remains valid for
    /// resuming.
    Cancelled {
        /// Allocation clock when the cancellation was observed.
        at: VirtualTime,
    },
    /// Checkpointing failed: a mid-run checkpoint could not be written,
    /// or a resume checkpoint belongs to a different run (wrong trace,
    /// policy, or physics configuration).
    Checkpoint {
        /// Allocation clock of the checkpoint operation.
        at: VirtualTime,
        /// The container's or compatibility check's account of it.
        source: dtb_trace::CkpError,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Policy {
                at,
                collection,
                source,
            } => write!(
                f,
                "policy failed at scavenge #{collection} (clock {}): {source}",
                at.as_u64()
            ),
            SimError::BudgetExceeded { kind, limit, at } => write!(
                f,
                "budget exceeded: more than {limit} {kind} by clock {}",
                at.as_u64()
            ),
            SimError::Invariant { at, violation } => {
                write!(
                    f,
                    "invariant violated at clock {}: {violation}",
                    at.as_u64()
                )
            }
            SimError::Source { at, source } => {
                write!(f, "event source failed at clock {}: {source}", at.as_u64())
            }
            SimError::Cancelled { at } => {
                write!(f, "run cancelled at clock {}", at.as_u64())
            }
            SimError::Checkpoint { at, source } => {
                write!(f, "checkpoint failed at clock {}: {source}", at.as_u64())
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Policy { source, .. } => Some(source),
            SimError::Source { source, .. } => Some(source),
            SimError::Checkpoint { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        let e = SimError::Policy {
            at: VirtualTime::from_bytes(100),
            collection: 3,
            source: PolicyError::NonFiniteBoundary {
                policy: "EVIL".into(),
                value: f64::NAN,
            },
        };
        let s = e.to_string();
        assert!(s.contains("scavenge #3"), "{s}");
        assert!(s.contains("EVIL"), "{s}");

        let b = SimError::BudgetExceeded {
            kind: BudgetKind::Scavenges,
            limit: 8,
            at: VirtualTime::from_bytes(42),
        };
        assert!(b.to_string().contains("more than 8 scavenges"));

        let i = SimError::Invariant {
            at: VirtualTime::from_bytes(7),
            violation: InvariantViolation::NonMonotoneTime {
                prev: VirtualTime::from_bytes(7),
                next: VirtualTime::from_bytes(7),
            },
        };
        assert!(i.to_string().contains("invariant violated"));
    }

    #[test]
    fn policy_source_is_chained() {
        use std::error::Error;
        let e = SimError::Policy {
            at: VirtualTime::ZERO,
            collection: 0,
            source: PolicyError::NegativeBoundary {
                policy: "X".into(),
                value: -1.0,
            },
        };
        assert!(e.source().is_some());
        assert!(SimError::BudgetExceeded {
            kind: BudgetKind::Events,
            limit: 1,
            at: VirtualTime::ZERO,
        }
        .source()
        .is_none());
    }
}
