//! Per-run measurements: everything the paper's tables report.

use dtb_core::cost::CostModel;
use dtb_core::history::ScavengeHistory;
use dtb_core::policy::Row;
use dtb_core::stats::{SampleStats, WeightedStats};
use dtb_core::time::Bytes;
use serde::{Deserialize, Serialize};

/// A serializable image of a [`MetricsCollector`] mid-run, for
/// checkpointing.
///
/// Everything the collector accumulates is captured exactly — the
/// weighted memory accumulator, the raw pause samples, and the scavenge
/// history — so a collector restored from this state finishes with a
/// bit-identical [`SimReport`] to one that ran straight through. (The
/// cost model is deliberately absent: it is part of the simulation
/// configuration, and [`MetricsCollector::restore`] takes it afresh so a
/// checkpoint cannot smuggle in a different machine model.)
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MetricsState {
    /// Weighted memory-in-use accumulator.
    pub memory: WeightedStats,
    /// Raw pause-time samples, milliseconds.
    pub pauses: SampleStats,
    /// Completed scavenges.
    pub history: ScavengeHistory,
}

/// The measurements of one simulated collector run, in the units the
/// paper's tables use.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Which table row this run measures (a collector or a baseline);
    /// serialized as its printed label (`"FULL"`, `"DTBFM"`, `"No GC"`…).
    pub policy: Row,
    /// Workload label (`"GHOST(1)"`, …).
    pub program: String,
    /// Table 2: allocation-weighted mean memory in use, bytes.
    pub mem_mean: Bytes,
    /// Table 2: maximum memory in use, bytes.
    pub mem_max: Bytes,
    /// Table 3: median pause, milliseconds.
    pub pause_median_ms: f64,
    /// Table 3: 90th-percentile pause, milliseconds.
    pub pause_p90_ms: f64,
    /// Table 4: total bytes traced.
    pub total_traced: Bytes,
    /// Table 4: estimated CPU overhead, percent of execution time.
    pub overhead_pct: f64,
    /// Number of scavenges performed.
    pub collections: usize,
    /// Full per-scavenge history (for curves and diagnostics).
    pub history: ScavengeHistory,
}

impl SimReport {
    /// Table 2's (mean, max) in binary kilobytes, as printed.
    pub fn mem_kb(&self) -> (f64, f64) {
        (
            self.mem_mean.as_u64() as f64 / 1024.0,
            self.mem_max.as_u64() as f64 / 1024.0,
        )
    }

    /// Table 4's traced column in binary kilobytes.
    pub fn traced_kb(&self) -> f64 {
        self.total_traced.as_u64() as f64 / 1024.0
    }
}

/// Accumulates measurements during a run and finalizes a [`SimReport`].
#[derive(Clone, Debug)]
pub struct MetricsCollector {
    cost: CostModel,
    memory: WeightedStats,
    pauses: SampleStats,
    history: ScavengeHistory,
}

impl MetricsCollector {
    /// Creates a collector under a cost model.
    pub fn new(cost: CostModel) -> MetricsCollector {
        MetricsCollector {
            cost,
            memory: WeightedStats::new(),
            pauses: SampleStats::new(),
            history: ScavengeHistory::new(),
        }
    }

    /// Records that memory in use held `level` for `span` allocation bytes.
    pub fn record_memory(&mut self, level: Bytes, span: Bytes) {
        self.memory
            .record(level.as_u64() as f64, span.as_u64() as f64);
    }

    /// Records a completed scavenge.
    pub fn record_scavenge(&mut self, record: dtb_core::history::ScavengeRecord) {
        self.pauses.record(self.cost.pause_ms(record.traced));
        self.history.push(record);
    }

    /// Read access to the history (the policy context borrows it).
    pub fn history(&self) -> &ScavengeHistory {
        &self.history
    }

    /// Captures the collector's accumulated state for a checkpoint.
    pub fn state(&self) -> MetricsState {
        MetricsState {
            memory: self.memory,
            pauses: self.pauses.clone(),
            history: self.history.clone(),
        }
    }

    /// Rebuilds a collector from checkpointed state under `cost`.
    pub fn restore(cost: CostModel, state: MetricsState) -> MetricsCollector {
        MetricsCollector {
            cost,
            memory: state.memory,
            pauses: state.pauses,
            history: state.history,
        }
    }

    /// Finalizes the report for a program that ran `exec_seconds`.
    pub fn finish(
        mut self,
        policy: impl Into<Row>,
        program: impl Into<String>,
        exec_seconds: f64,
    ) -> SimReport {
        let total_traced = self.history.total_traced();
        SimReport {
            policy: policy.into(),
            program: program.into(),
            mem_mean: Bytes::new(self.memory.mean().unwrap_or(0.0) as u64),
            mem_max: Bytes::new(self.memory.max().unwrap_or(0.0) as u64),
            pause_median_ms: self.pauses.median().unwrap_or(0.0),
            pause_p90_ms: self.pauses.percentile(90.0).unwrap_or(0.0),
            total_traced,
            overhead_pct: self.cost.overhead_percent(total_traced, exec_seconds),
            collections: self.history.len(),
            history: self.history,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtb_core::history::ScavengeRecord;
    use dtb_core::time::VirtualTime;

    fn rec(at: u64, traced: u64) -> ScavengeRecord {
        ScavengeRecord {
            at: VirtualTime::from_bytes(at),
            boundary: VirtualTime::ZERO,
            traced: Bytes::new(traced),
            surviving: Bytes::new(traced),
            reclaimed: Bytes::ZERO,
            mem_before: Bytes::new(traced),
        }
    }

    #[test]
    fn report_units_convert() {
        let mut m = MetricsCollector::new(CostModel::paper());
        m.record_memory(Bytes::new(2048), Bytes::new(100));
        m.record_scavenge(rec(100, 50_000)); // 100 ms
        m.record_scavenge(rec(200, 25_000)); // 50 ms
        let r = m.finish("FULL", "TEST", 10.0);
        assert_eq!(r.mem_kb(), (2.0, 2.0));
        assert_eq!(r.collections, 2);
        assert!((r.pause_median_ms - 75.0).abs() < 1e-9);
        // 75 000 bytes traced at 500 KB/s = 0.15 s over 10 s = 1.5 %.
        assert!((r.overhead_pct - 1.5).abs() < 1e-9);
        assert!((r.traced_kb() - 75_000.0 / 1024.0).abs() < 1e-9);
    }

    #[test]
    fn empty_run_report_is_zeroed() {
        let m = MetricsCollector::new(CostModel::paper());
        let r = m.finish("FULL", "EMPTY", 1.0);
        assert_eq!(r.mem_mean, Bytes::ZERO);
        assert_eq!(r.pause_median_ms, 0.0);
        assert_eq!(r.collections, 0);
    }
}
