//! Regression test: the steady-state scavenge path allocates nothing.
//!
//! The pre-incremental heap built two heap-sized vectors per survival
//! snapshot, so every scavenge paid an O(heap) allocation toll. The
//! incremental `OracleHeap` answers boundary decisions from borrowed
//! views of its Fenwick indices and compacts residents in place; this
//! test pins that property with a counting global allocator: after
//! warm-up, snapshot + queries + scavenge must perform **zero**
//! allocations.
//!
//! The observability layer rides on the same guarantee: with no sink
//! installed, [`dtb_obs::emit`] is one relaxed atomic load and a branch
//! — the event-building closure (which allocates strings) must never
//! run. The measured region exercises that disabled path too, so
//! instrumenting a hot loop can never quietly tax the uninstrumented
//! build.
//!
//! The whole file is a single `#[test]` — the counter is process-global,
//! and a sibling test allocating on another thread would pollute it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use dtb_core::policy::{SurvivalEstimator, SurvivalLender};
use dtb_core::time::{Bytes, VirtualTime};
use dtb_sim::heap::{OracleHeap, SimObject};

/// Counts every allocation (and growth reallocation) routed through the
/// global allocator.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn t(v: u64) -> VirtualTime {
    VirtualTime::from_bytes(v)
}

#[test]
fn steady_state_scavenge_path_is_allocation_free() {
    // A 20k-object heap: one third dies young, one third dies later, one
    // third is immortal — so scavenges see survivors, reclaimable dead,
    // and tenured garbage all at once.
    let n = 20_000u64;
    let mut heap = OracleHeap::with_capacity(n as usize);
    for i in 0..n {
        let birth = (i + 1) * 100;
        heap.insert(SimObject {
            birth: t(birth),
            size: (i % 512 + 8) as u32,
            death: match i % 3 {
                0 => Some(t(birth + 5_000)),
                1 => Some(t(birth + 900_000)),
                _ => None,
            },
        });
    }

    // Warm up: advance the lazy clock partway and run one scavenge so the
    // measured region exercises the steady state, not first-touch paths.
    let warm_now = t(n * 50);
    heap.live_bytes_at(warm_now);
    heap.scavenge(t(n * 25), warm_now);

    let before = ALLOCATIONS.load(Ordering::Relaxed);

    // Measured region: two full scavenge decision points — borrow the
    // survival view, probe candidate boundaries (as a policy would), read
    // live bytes for the curve, scavenge. The clock advance between them
    // drains thousands of pending deaths.
    let mut observed = Bytes::ZERO;
    for round in 0..2u64 {
        let now = t(n * 60 + round * n * 30);
        let tb = t(n * 40 + round * n * 20);
        {
            let snap = heap.survival_view(now);
            for probe in 0..16u64 {
                observed += snap.surviving_born_after(t(probe * n * 8));
            }
        }
        observed += heap.live_bytes_at(now);
        let outcome = heap.scavenge(tb, now);
        observed += outcome.traced + outcome.reclaimed + outcome.tenured_garbage;

        // The disabled observability path: no sink is installed in this
        // process, so the closure — which would allocate two strings
        // and an event — must never run, and `emit` must not allocate
        // on its own behalf either.
        assert!(!dtb_obs::enabled(), "this test never installs a sink");
        for probe in 0..64u64 {
            dtb_obs::emit(|| dtb_obs::Event::CellStarted {
                column: format!("probe-{probe}"),
                row: "zero-alloc".to_string(),
                attempt: 1,
            });
        }
    }

    let allocations = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert!(observed > Bytes::ZERO, "queries must do real work");
    assert_eq!(
        allocations, 0,
        "steady-state snapshot/query/scavenge path must not allocate"
    );
}
