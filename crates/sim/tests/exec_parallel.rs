//! The executor's determinism contract, end-to-end: a parallel run equals
//! a forced serial run cell-for-cell, and preset traces are compiled
//! exactly once per process no matter how many evaluations share them.

use dtb_core::policy::{PolicyKind, Row};
use dtb_sim::engine::SimConfig;
use dtb_sim::exec::{Evaluation, TraceCache};
use dtb_trace::programs::Program;
use dtb_trace::TraceBuilder;
use std::sync::Arc;

/// A small ad-hoc trace so the matrix mixes presets and custom columns.
fn tiny_trace() -> Arc<dtb_trace::event::CompiledTrace> {
    let mut b = TraceBuilder::new("tiny");
    for i in 0..120 {
        let id = b.alloc(20_000);
        if i % 3 != 0 {
            b.free(id);
        }
    }
    Arc::new(b.finish().compile().expect("well-formed"))
}

fn evaluation(parallelism: usize) -> Evaluation {
    Evaluation::new()
        .programs([Program::Cfrac])
        .trace(tiny_trace())
        .custom_policy("HALF", |cfg| PolicyKind::DtbFm.build(cfg))
        .sim_config(SimConfig::paper().with_curve())
        .parallelism(parallelism)
}

#[test]
fn parallel_run_equals_serial_run() {
    let serial = evaluation(1).run();
    let parallel = evaluation(4).run();

    let serial_cells: Vec<_> = serial.cells().collect();
    let parallel_cells: Vec<_> = parallel.cells().collect();
    assert_eq!(serial_cells.len(), parallel_cells.len());
    // 2 columns × (6 policies + 1 custom + 2 baselines).
    assert_eq!(serial_cells.len(), 18);

    for ((scol, scell), (pcol, pcell)) in serial_cells.iter().zip(&parallel_cells) {
        assert_eq!(scol.name(), pcol.name());
        assert_eq!(scell.row, pcell.row);
        // The whole SimRun — report AND curve — must be byte-identical,
        // and every cell of this healthy matrix must have completed.
        assert_eq!(
            scell.run().expect("serial cell completed"),
            pcell.run().expect("parallel cell completed"),
            "{}/{} diverged",
            scol.name(),
            scell.row
        );
    }
}

#[test]
fn matrix_lookup_agrees_with_iteration_order() {
    let matrix = evaluation(0).run();
    let col = matrix.column(Program::Cfrac).expect("preset column");
    let rows: Vec<Row> = col.cells.iter().map(|c| c.row.clone()).collect();
    let mut expected: Vec<Row> = PolicyKind::ALL.iter().copied().map(Row::Policy).collect();
    expected.push(Row::Custom("HALF".into()));
    expected.push(Row::NoGc);
    expected.push(Row::Live);
    assert_eq!(rows, expected);
    for kind in PolicyKind::ALL {
        let direct = matrix.get(Program::Cfrac, kind).expect("cell");
        let via_iter = col
            .reports()
            .find(|r| r.policy == Row::Policy(kind))
            .expect("row");
        assert_eq!(direct, via_iter);
    }
    // The custom column is addressable through `columns`, not `get`.
    assert!(matrix.columns().iter().any(|c| c.name() == "tiny"));
}

#[test]
fn presets_compile_once_per_process() {
    let cache = TraceCache::new();
    let first = cache.preset(Program::Cfrac);
    // Same cache, another cache, the raw accessor, and a full evaluation:
    // all pointer-equal — the preset was compiled exactly once.
    assert!(Arc::ptr_eq(&first, &cache.preset(Program::Cfrac)));
    assert!(Arc::ptr_eq(
        &first,
        &TraceCache::new().preset(Program::Cfrac)
    ));
    assert!(Arc::ptr_eq(&first, &Program::Cfrac.compiled()));
    let matrix = Evaluation::new()
        .programs([Program::Cfrac])
        .policies([PolicyKind::Full])
        .baselines(false)
        .run();
    let column_trace = matrix
        .column(Program::Cfrac)
        .unwrap()
        .trace
        .as_ref()
        .expect("preset columns carry their trace");
    assert!(Arc::ptr_eq(&first, column_trace));
}
