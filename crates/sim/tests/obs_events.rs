//! Event-order determinism for the observability bus: every execution
//! strategy of the engine — per-event, block-structured at any block
//! size, and the intra-cell parallel drive at any thread count — must
//! emit the **same scavenge event sequence**: same relative sequence
//! numbers, same payloads, in the same order.
//!
//! This is the telemetry face of the engine's bit-identical determinism
//! contract (`tests/intra_cell.rs`): the scavenge span payload carries
//! only engine-invariant quantities (trigger clock, outcome bytes,
//! inverse-query *call* count), so a dashboard fed by a parallel run is
//! indistinguishable from one fed by the reference per-event run.
//!
//! The bus is process-global, so the tests in this file serialize on a
//! mutex and filter captured envelopes by run scope.

use dtb_core::policy::{PolicyConfig, PolicyKind};
use dtb_obs::{CaptureSink, Envelope, Event};
use dtb_sim::engine::{Sim, SimConfig};
use dtb_trace::programs::Program;
use std::sync::{Arc, Mutex, MutexGuard};

/// A named engine configuration under test.
type Variant = (&'static str, Box<dyn FnOnce(Sim) -> Sim>);

/// Serializes bus-touching tests within this binary.
fn bus_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// One captured run: the envelopes of a single engine execution, in bus
/// order, filtered to the run's own scope.
struct CapturedRun {
    /// The run's scope id.
    scope: u64,
    /// Every envelope the run emitted, bus order.
    envelopes: Vec<Envelope>,
}

impl CapturedRun {
    /// The scavenge events with their sequence numbers *relative to the
    /// run's first envelope* — the shape that must be identical across
    /// execution strategies (absolute seqs are bus-global and depend on
    /// what ran before).
    fn scavenges(&self) -> Vec<(u64, Event)> {
        let first = self.envelopes.first().map(|e| e.seq).unwrap_or(0);
        self.envelopes
            .iter()
            .filter(|e| matches!(e.event, Event::Scavenge { .. }))
            .map(|e| (e.seq - first, e.event.clone()))
            .collect()
    }
}

/// Runs one engine configuration over `program`'s trace with a capture
/// sink installed and returns the run's own envelopes.
fn capture_run(
    program: Program,
    kind: PolicyKind,
    configure: impl FnOnce(Sim) -> Sim,
) -> CapturedRun {
    let trace = program.compiled();
    let sink = Arc::new(CaptureSink::default());
    let guard = dtb_obs::install(sink.clone());
    let mut policy = kind.build(&PolicyConfig::paper());
    configure(Sim::new(SimConfig::paper()))
        .run_trace(&trace, &mut policy)
        .expect("instrumented run");
    dtb_obs::flush();
    drop(guard);
    let all = sink.take();
    let scope = all
        .iter()
        .find(|e| matches!(e.event, Event::RunStarted { .. }))
        .map(|e| e.scope)
        .expect("run emitted a run_started span");
    let envelopes: Vec<Envelope> = all.into_iter().filter(|e| e.scope == scope).collect();
    CapturedRun { scope, envelopes }
}

/// Per-event, block (several block sizes), and parallel (several thread
/// counts) runs all emit the same scavenge sequence — relative seq and
/// full payload.
#[test]
fn engines_emit_identical_scavenge_sequences() {
    let _guard = bus_lock();
    for kind in [PolicyKind::DtbMem, PolicyKind::Fixed1] {
        let reference = capture_run(Program::Cfrac, kind, |sim| sim.block_events(1));
        let expected = reference.scavenges();
        assert!(
            !expected.is_empty(),
            "{kind}: the reference run must scavenge at least once"
        );
        let variants: [Variant; 5] = [
            ("block(default)", Box::new(|sim| sim)),
            ("block(7)", Box::new(|sim| sim.block_events(7))),
            ("block(4096)", Box::new(|sim| sim.block_events(4096))),
            ("threads(2)", Box::new(|sim| sim.threads(2))),
            ("threads(3)", Box::new(|sim| sim.threads(3))),
        ];
        for (label, configure) in variants {
            let run = capture_run(Program::Cfrac, kind, configure);
            assert_eq!(
                run.scavenges(),
                expected,
                "{kind}: {label} scavenge event sequence diverges from per-event"
            );
        }
    }
}

/// A run's envelopes are contiguous on the bus (no drops, no foreign
/// interleavings under the lock), all share the run's scope, and the
/// span brackets are in place: `run_started` first, `run_finished`
/// last, scavenges strictly ordered by `collection`.
#[test]
fn run_envelopes_are_contiguous_scoped_and_bracketed() {
    let _guard = bus_lock();
    let dropped_before = dtb_obs::stats().dropped;
    let run = capture_run(Program::Cfrac, PolicyKind::DtbMem, |sim| sim);
    assert_eq!(
        dtb_obs::stats().dropped,
        dropped_before,
        "the capture must not overflow the ring"
    );
    assert!(run.scope > 0, "run scopes are nonzero");
    let seqs: Vec<u64> = run.envelopes.iter().map(|e| e.seq).collect();
    for pair in seqs.windows(2) {
        assert_eq!(pair[1], pair[0] + 1, "gap in the run's envelope seqs");
    }
    assert!(
        matches!(
            run.envelopes.first().map(|e| &e.event),
            Some(Event::RunStarted { .. })
        ),
        "run_started opens the span"
    );
    assert!(
        matches!(
            run.envelopes.last().map(|e| &e.event),
            Some(Event::RunFinished { .. })
        ),
        "run_finished closes the span"
    );
    let collections: Vec<u64> = run
        .envelopes
        .iter()
        .filter_map(|e| match e.event {
            Event::Scavenge { collection, .. } => Some(collection),
            _ => None,
        })
        .collect();
    let expected: Vec<u64> = (0..collections.len() as u64).collect();
    assert_eq!(collections, expected, "collections number 0..n in order");
}
