//! Property tests for the inverse survival query: the oracle heap's
//! Fenwick-descent [`oldest_boundary_within`] must equal the trait's
//! default candidate scan — the executable specification — over random
//! heap states, random scavenge histories, and random budgets.
//!
//! The descent answers Feedback Mediation's search (`least { t_k |
//! Trace_max ≥ surviving_born_after(t_k) }`) in one `O(log n)` tree
//! walk. Its correctness rests on the estimator contract: survival is
//! monotone non-increasing in the boundary, so the fitting candidates
//! form a suffix, and the descent must find the very first of them —
//! including across dead slots (zero live bytes), clock advances that
//! move bytes between the indices, and budgets at both extremes.
//!
//! [`oldest_boundary_within`]:
//!     dtb_core::policy::SurvivalEstimator::oldest_boundary_within

use dtb_core::history::{ScavengeHistory, ScavengeRecord};
use dtb_core::policy::SurvivalEstimator;
use dtb_core::time::{Bytes, VirtualTime};
use dtb_sim::{OracleHeap, SimObject};
use proptest::prelude::*;

/// One allocation: `(birth_gap, size, lifetime)`, all in clock bytes;
/// `lifetime == None` lives forever.
type Alloc = (u32, u32, Option<u32>);

/// Builds an oracle heap from random allocations and advances its lazy
/// clock to `now` (chosen inside the birth span so some deaths have
/// struck and others are still pending).
fn build_heap(allocs: &[Alloc]) -> (OracleHeap, VirtualTime, VirtualTime) {
    let mut heap = OracleHeap::with_capacity(allocs.len());
    let mut clock = 0u64;
    for &(gap, size, lifetime) in allocs {
        clock += gap as u64 + 1; // births strictly increase
        heap.insert(SimObject {
            birth: VirtualTime::from_bytes(clock),
            size,
            death: lifetime.map(|l| VirtualTime::from_bytes(clock + l as u64)),
        });
    }
    let now = VirtualTime::from_bytes(clock + 1);
    (heap, now, VirtualTime::from_bytes(clock))
}

/// A history whose scavenge times span the heap's birth range — the
/// candidate set the mediation step searches.
fn build_history(last_birth: VirtualTime, times: &[u32]) -> ScavengeHistory {
    let mut h = ScavengeHistory::new();
    let mut at = 0u64;
    for &gap in times {
        at += gap as u64 + 1;
        // Only `at` matters to the candidate search; the other fields
        // are plausible filler.
        h.push(ScavengeRecord {
            at: VirtualTime::from_bytes(at),
            boundary: VirtualTime::ZERO,
            traced: Bytes::ZERO,
            surviving: Bytes::ZERO,
            reclaimed: Bytes::ZERO,
            mem_before: Bytes::ZERO,
        });
        if at > last_birth.as_u64() {
            break;
        }
    }
    h
}

fn allocs() -> impl Strategy<Value = Vec<Alloc>> {
    prop::collection::vec(
        (0u32..2_000, 1u32..=50_000, prop::option::of(0u32..6_000)),
        1..120,
    )
}

/// Budgets at both extremes plus values inside the live-byte range.
fn budgets() -> impl Strategy<Value = u64> {
    const PIVOTS: [u64; 7] = [0, 1, 1_000, 40_000, 120_000, 600_000, u64::MAX / 2];
    (0usize..PIVOTS.len()).prop_map(|i| PIVOTS[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Descent == default scan, for every (heap, history, budget,
    /// lower-bound) combination tried.
    #[test]
    fn descent_matches_candidate_scan(
        allocs in allocs(),
        gaps in prop::collection::vec(0u32..3_000, 1..40),
        budget in budgets(),
        from_frac in 0u64..=100,
    ) {
        let (mut heap, now, last_birth) = build_heap(&allocs);
        let history = build_history(last_birth, &gaps);
        let from = VirtualTime::from_bytes(
            last_birth.as_u64() * from_frac / 100);
        let snap = heap.survival_snapshot(now);
        let trace_max = Bytes::new(budget);
        let candidates = history.candidates_at_or_after(from);

        // The specification: walk candidates oldest-first, first fit
        // wins (exactly the default trait method's loop).
        let expected = candidates
            .times()
            .find(|&t| snap.surviving_born_after(t) <= trace_max);

        let got = snap.oldest_boundary_within(trace_max, candidates);
        prop_assert_eq!(
            got, expected,
            "budget {} from {:?}: descent diverges from scan", budget, from
        );
    }

    /// The answer is self-consistent without reference to the scan: it
    /// fits, and every earlier candidate does not.
    #[test]
    fn descent_answer_is_oldest_fitting(
        allocs in allocs(),
        gaps in prop::collection::vec(0u32..3_000, 1..40),
        budget in 0u64..300_000,
    ) {
        let (mut heap, now, last_birth) = build_heap(&allocs);
        let history = build_history(last_birth, &gaps);
        let snap = heap.survival_snapshot(now);
        let trace_max = Bytes::new(budget);
        let candidates = history.candidates_at_or_after(VirtualTime::ZERO);

        match snap.oldest_boundary_within(trace_max, candidates) {
            Some(t) => {
                prop_assert!(snap.surviving_born_after(t) <= trace_max);
                for earlier in candidates.times().take_while(|&c| c < t) {
                    prop_assert!(
                        snap.surviving_born_after(earlier) > trace_max,
                        "candidate {:?} before {:?} also fits", earlier, t
                    );
                }
            }
            None => {
                for c in candidates.times() {
                    prop_assert!(
                        snap.surviving_born_after(c) > trace_max,
                        "no answer returned but {:?} fits", c
                    );
                }
            }
        }
    }
}
