//! Fault-injection harness: inject every failure class the taxonomy
//! names — panicking policies, typed policy errors, out-of-range
//! boundaries, watchdog budget trips, corrupted traces — and assert the
//! framework contains each one: the offending cell fails with the right
//! typed cause, every healthy cell matches a fault-free run cell-for-cell,
//! and no panic ever escapes `Evaluation::run`.

use dtb_core::policy::{PolicyKind, Row};
use dtb_sim::engine::{SimBudget, SimConfig};
use dtb_sim::error::{BudgetKind, InvariantViolation, SimError};
use dtb_sim::exec::{Evaluation, FailureCause, Matrix};
use dtb_sim::fault::{FailAfter, FutureBoundary, InfiniteBoundary, NanBoundary, PanicAfter};
use dtb_trace::corrupt;
use dtb_trace::programs::Program;
use dtb_trace::TraceBuilder;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

const HEALTHY: [PolicyKind; 3] = [PolicyKind::Full, PolicyKind::Fixed1, PolicyKind::DtbFm];

/// The fault-free control: the same healthy rows every faulted run below
/// carries alongside its injected fault.
fn control() -> Matrix {
    Evaluation::new()
        .programs([Program::Cfrac])
        .policies(HEALTHY)
        .baselines(false)
        .run()
}

fn faulted(
    name: &'static str,
    factory: impl Fn() -> Box<dyn dtb_core::policy::TbPolicy> + Send + Sync + 'static,
) -> Matrix {
    Evaluation::new()
        .programs([Program::Cfrac])
        .policies(HEALTHY)
        .custom_policy(name, move |_| factory())
        .baselines(false)
        .run()
}

/// Asserts the matrix has exactly one failure, in the named custom row,
/// and returns its cause.
fn single_failure(matrix: &Matrix, name: &str) -> FailureCause {
    let failures: Vec<_> = matrix.failures().collect();
    assert_eq!(failures.len(), 1, "exactly one cell fails: {failures:?}");
    assert_eq!(failures[0].row, Row::Custom(name.into()));
    assert!(!matrix.is_complete());
    failures[0].cause.clone()
}

/// Asserts every healthy cell of `matrix` equals the fault-free control
/// cell-for-cell.
fn healthy_cells_match(matrix: &Matrix, control: &Matrix) {
    for kind in HEALTHY {
        assert_eq!(
            matrix.get(Program::Cfrac, kind).expect("healthy cell"),
            control.get(Program::Cfrac, kind).expect("control cell"),
            "{kind:?} diverged from the fault-free run"
        );
    }
}

#[test]
fn panicking_policy_is_contained_to_its_cell() {
    let control = control();
    let matrix = catch_unwind(AssertUnwindSafe(|| {
        faulted("FAULT-PANIC", || Box::new(PanicAfter::new(1)))
    }))
    .expect("no panic escapes Evaluation::run");

    let cause = single_failure(&matrix, "FAULT-PANIC");
    match cause {
        FailureCause::Panic(msg) => assert!(msg.contains("injected policy panic"), "{msg}"),
        other => panic!("expected a caught panic, got {other:?}"),
    }
    healthy_cells_match(&matrix, &control);
}

#[test]
fn panicking_factory_is_contained_to_its_cell() {
    let control = control();
    let matrix = catch_unwind(AssertUnwindSafe(|| {
        faulted("FAULT-FACTORY", || panic!("factory exploded"))
    }))
    .expect("no panic escapes Evaluation::run");

    let cause = single_failure(&matrix, "FAULT-FACTORY");
    match cause {
        FailureCause::Panic(msg) => assert!(msg.contains("factory exploded"), "{msg}"),
        other => panic!("expected a caught panic, got {other:?}"),
    }
    healthy_cells_match(&matrix, &control);
}

#[test]
fn non_finite_boundaries_fail_as_typed_policy_errors() {
    let control = control();
    for (name, matrix) in [
        ("FAULT-NAN", faulted("FAULT-NAN", || Box::new(NanBoundary))),
        (
            "FAULT-INF",
            faulted("FAULT-INF", || Box::new(InfiniteBoundary)),
        ),
    ] {
        match single_failure(&matrix, name) {
            FailureCause::Sim(SimError::Policy { collection, .. }) => {
                assert_eq!(collection, 0, "the very first decision is rejected");
            }
            other => panic!("expected a typed policy error, got {other:?}"),
        }
        healthy_cells_match(&matrix, &control);
    }
}

#[test]
fn policy_failure_reports_its_scavenge_index() {
    let matrix = faulted("FAULT-FAIL", || Box::new(FailAfter::new(2)));
    match single_failure(&matrix, "FAULT-FAIL") {
        FailureCause::Sim(SimError::Policy { collection, .. }) => assert_eq!(collection, 2),
        other => panic!("expected a typed policy error, got {other:?}"),
    }
}

#[test]
fn future_boundary_is_an_invariant_violation_when_checked() {
    let matrix = Evaluation::new()
        .programs([Program::Cfrac])
        .policies([PolicyKind::Full])
        .custom_policy("FAULT-FUTURE", |_| Box::new(FutureBoundary))
        .baselines(false)
        .sim_config(SimConfig::paper().with_invariant_checks(true))
        .run();
    match single_failure(&matrix, "FAULT-FUTURE") {
        FailureCause::Sim(SimError::Invariant {
            violation: InvariantViolation::BoundaryBeyondNow { boundary, now },
            ..
        }) => assert!(boundary > now),
        other => panic!("expected BoundaryBeyondNow, got {other:?}"),
    }

    // With checks off the framework clamps defensively and the cell
    // completes.
    let lenient = Evaluation::new()
        .programs([Program::Cfrac])
        .policies([PolicyKind::Full])
        .custom_policy("FAULT-FUTURE", |_| Box::new(FutureBoundary))
        .baselines(false)
        .sim_config(SimConfig::paper().with_invariant_checks(false))
        .run();
    assert!(lenient.is_complete());
}

#[test]
fn watchdog_budget_stops_runaway_cells() {
    let matrix = Evaluation::new()
        .programs([Program::Cfrac])
        .policies(HEALTHY)
        .baselines(false)
        .cell_budget(SimBudget::events(10))
        .run();
    let failures: Vec<_> = matrix.failures().collect();
    assert_eq!(failures.len(), HEALTHY.len(), "every cell trips the budget");
    for f in failures {
        match &f.cause {
            FailureCause::Sim(SimError::BudgetExceeded { kind, limit, .. }) => {
                assert_eq!(*kind, BudgetKind::Events);
                assert_eq!(*limit, 10);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }
}

#[test]
fn corrupted_trace_fails_only_its_column() {
    let mut b = TraceBuilder::new("victim");
    for i in 0..200 {
        let id = b.alloc(20_000);
        if i % 2 == 0 {
            b.free(id);
        }
    }
    let clean = b.finish().compile().expect("well-formed");

    for (label, corrupted, check) in [
        (
            "death-before-birth",
            corrupt::death_before_birth(&clean, 5),
            (|v: &InvariantViolation| matches!(v, InvariantViolation::DeathBeforeBirth { .. }))
                as fn(&InvariantViolation) -> bool,
        ),
        (
            "reversed-births",
            corrupt::reversed_births(&clean),
            (|v: &InvariantViolation| matches!(v, InvariantViolation::NonMonotoneTime { .. }))
                as fn(&InvariantViolation) -> bool,
        ),
    ] {
        let matrix = Evaluation::new()
            .programs([Program::Cfrac])
            .trace(Arc::new(corrupted))
            .policies([PolicyKind::Full])
            .baselines(false)
            .run();
        // The healthy preset column completed; only the corrupted column
        // failed, with the matching shape violation.
        assert!(
            matrix.get(Program::Cfrac, PolicyKind::Full).is_some(),
            "{label}: healthy column must complete"
        );
        let failures: Vec<_> = matrix.failures().collect();
        assert_eq!(failures.len(), 1, "{label}: one failure: {failures:?}");
        assert_eq!(failures[0].program, "victim");
        match &failures[0].cause {
            FailureCause::Sim(SimError::Invariant { violation, .. }) => {
                assert!(check(violation), "{label}: wrong violation: {violation:?}")
            }
            other => panic!("{label}: expected an invariant violation, got {other:?}"),
        }
    }
}
