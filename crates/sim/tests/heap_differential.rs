//! Differential testing: the incremental `OracleHeap` against the
//! scan-based `NaiveHeap`, driven through the full engine.
//!
//! The naive heap is the executable specification — every query is a
//! plain filter over the object vector. These properties replay random
//! compiled traces through `simulate` (incremental) and
//! `Sim::heap::<NaiveHeap>()` (specification) for **all six
//! policies** and require the complete runs — every `ScavengeOutcome`-
//! derived record, report metric, and curve point — to be identical.
//! Policies see survival estimates from each heap's own snapshot
//! implementation, so a divergence anywhere (boundary choice, byte
//! accounting, lazy-death bookkeeping) cascades into a visible mismatch.

use dtb_core::policy::{PolicyConfig, PolicyKind};
use dtb_sim::engine::{simulate, Sim, SimConfig};
use dtb_sim::NaiveHeap;
use dtb_trace::event::CompiledTrace;
use dtb_trace::{ObjectId, TraceBuilder};
use proptest::prelude::*;

/// One allocation step: object size plus an optional death, scheduled
/// `die_after` allocation events later (0 = dies immediately).
type Op = (u32, Option<u8>);

/// Builds a valid compiled trace from a random op list. Sizes up to
/// 60 KB over up to 400 events give multi-megabyte traces — enough for
/// several 1 MB-trigger scavenges with survivors, tenured garbage, and
/// untenuring opportunities.
fn compile_ops(ops: &[Op]) -> CompiledTrace {
    let mut b = TraceBuilder::new("differential");
    b.exec_seconds(1.0);
    let mut due: Vec<(usize, ObjectId)> = Vec::new();
    for (i, &(size, die_after)) in ops.iter().enumerate() {
        let id = b.alloc(size);
        if let Some(k) = die_after {
            due.push((i + k as usize, id));
        }
        let mut j = 0;
        while j < due.len() {
            if due[j].0 <= i {
                let (_, dead) = due.swap_remove(j);
                b.free(dead);
            } else {
                j += 1;
            }
        }
    }
    b.finish().compile().expect("builder traces are valid")
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec((1u32..=60_000, prop::option::of(0u8..=30)), 1..400)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Scavenge-for-scavenge, curve-point-for-curve-point identity of the
    /// incremental and naive heaps across every policy.
    #[test]
    fn incremental_heap_matches_naive_for_all_policies(ops in ops()) {
        let trace = compile_ops(&ops);
        let config = SimConfig::paper().with_curve().with_invariant_checks(true);
        let policy_cfg = PolicyConfig::paper();
        for kind in PolicyKind::ALL {
            let fast = {
                let mut policy = kind.build(&policy_cfg);
                simulate(&trace, &mut policy, &config)
            };
            let slow = {
                let mut policy = kind.build(&policy_cfg);
                Sim::new(config).heap::<NaiveHeap>().run_trace(&trace, &mut policy)
            };
            match (fast, slow) {
                (Ok(fast), Ok(slow)) => {
                    prop_assert_eq!(
                        &fast.report.history,
                        &slow.report.history,
                        "{}: scavenge histories diverge",
                        kind
                    );
                    prop_assert_eq!(
                        &fast.report,
                        &slow.report,
                        "{}: reports diverge",
                        kind
                    );
                    prop_assert_eq!(
                        &fast.curve,
                        &slow.curve,
                        "{}: memory curves diverge",
                        kind
                    );
                }
                (fast, slow) => prop_assert!(
                    false,
                    "{}: run outcomes diverge: fast={:?} slow={:?}",
                    kind,
                    fast.err(),
                    slow.err()
                ),
            }
        }
    }
}
