//! Differential testing for the block-structured drive loop: a run at
//! *any* block size must be **bit-identical** to the per-event reference
//! (`block_events(1)`, which routes every event through the exact
//! per-event body) — reports, scavenge histories, memory curves, and
//! typed error paths alike.
//!
//! Coverage:
//!
//! * all six policies over in-memory, sharded on-disk, and synthetic
//!   sources, at block sizes chosen to straddle scavenge triggers (a
//!   trigger firing mid-block forces the segmented fast path to stop
//!   exactly where the per-event path scavenges);
//! * a trigger dense enough to fire many times inside one block;
//! * checkpointing runs whose cadence never aligns with block
//!   boundaries, including a resume leg;
//! * typed errors — watchdog budgets, malformed trace shapes, and shard
//!   corruption — which must surface with identical payloads and clocks.

use dtb_core::policy::{PolicyConfig, PolicyKind};
use dtb_core::time::Bytes;
use dtb_sim::engine::{RunControl, Sim, SimBudget, SimConfig, SimRun};
use dtb_sim::trigger::Trigger;
use dtb_sim::{load_checkpoint, SimError};
use dtb_trace::event::CompiledTrace;
use dtb_trace::lifetime::{LifetimeDist, SizeDist};
use dtb_trace::{
    ctc, ClassSpec, CompiledSource, EventSource, ObjectId, ShardReader, SynthSource, TraceBuilder,
    WorkloadSpec,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Block sizes that deliberately misalign with everything: odd sizes
/// smaller than the events-per-trigger period, and one larger than most
/// whole traces.
const BLOCKS: &[usize] = &[3, 17, 1024];

fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("dtb-block-diff-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One allocation step: object size plus an optional death, scheduled
/// `die_after` allocation events later (0 = dies immediately).
type Op = (u32, Option<u8>);

fn compile_ops(ops: &[Op]) -> CompiledTrace {
    let mut b = TraceBuilder::new("block-differential");
    b.exec_seconds(1.0);
    let mut due: Vec<(usize, ObjectId)> = Vec::new();
    for (i, &(size, die_after)) in ops.iter().enumerate() {
        let id = b.alloc(size);
        if let Some(k) = die_after {
            due.push((i + k as usize, id));
        }
        let mut j = 0;
        while j < due.len() {
            if due[j].0 <= i {
                let (_, dead) = due.swap_remove(j);
                b.free(dead);
            } else {
                j += 1;
            }
        }
    }
    b.finish().compile().expect("builder traces are valid")
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec((1u32..=60_000, prop::option::of(0u8..=30)), 1..400)
}

fn run_at(
    source: &mut (impl EventSource + ?Sized),
    kind: PolicyKind,
    config: &SimConfig,
    block: usize,
) -> Result<SimRun, SimError> {
    let mut policy = kind.build(&PolicyConfig::paper());
    Sim::new(*config)
        .block_events(block)
        .run(source, &mut policy)
}

/// Both runs succeeded identically, or both failed identically.
fn assert_same(
    kind: PolicyKind,
    block: usize,
    reference: &Result<SimRun, SimError>,
    blocked: &Result<SimRun, SimError>,
) -> Result<(), TestCaseError> {
    match (reference, blocked) {
        (Ok(r), Ok(b)) => {
            prop_assert_eq!(
                &r.report.history,
                &b.report.history,
                "{} block {}: scavenge histories diverge",
                kind,
                block
            );
            prop_assert_eq!(
                &r.report,
                &b.report,
                "{} block {}: reports diverge",
                kind,
                block
            );
            prop_assert_eq!(
                &r.curve,
                &b.curve,
                "{} block {}: curves diverge",
                kind,
                block
            );
        }
        (Err(r), Err(b)) => {
            prop_assert_eq!(
                format!("{r:?}"),
                format!("{b:?}"),
                "{} block {}: errors diverge",
                kind,
                block
            );
        }
        (r, b) => prop_assert!(
            false,
            "{} block {}: outcomes diverge: reference={:?} blocked={:?}",
            kind,
            block,
            r.as_ref().err(),
            b.as_ref().err()
        ),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// In-memory and sharded sources: every block size reproduces the
    /// per-event reference for all six policies.
    #[test]
    fn blocked_runs_match_per_event_reference(ops in ops()) {
        let trace = compile_ops(&ops);
        let config = SimConfig::paper().with_curve().with_invariant_checks(true);
        let dir = temp_dir("prop");
        ctc::write_shards(&dir, &trace, 16).expect("write store");
        for kind in PolicyKind::ALL {
            let reference = run_at(&mut CompiledSource::new(&trace), kind, &config, 1);
            for &block in BLOCKS {
                let resident = run_at(&mut CompiledSource::new(&trace), kind, &config, block);
                assert_same(kind, block, &reference, &resident)?;
                let mut sharded = ShardReader::open(&dir).expect("open store");
                let streamed = run_at(&mut sharded, kind, &config, block);
                assert_same(kind, block, &reference, &streamed)?;
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Synthetic sources: the generator's own block path (lookahead
    /// record, stride checkpoints) reproduces the reference too.
    #[test]
    fn blocked_synth_runs_match_per_event_reference(seed in 0u64..1_000) {
        let spec = WorkloadSpec {
            name: "block-diff-synth".into(),
            description: String::new(),
            exec_seconds: 1.0,
            total_alloc: 3_000_000,
            initial_permanent: 50_000,
            initial_object_size: 512,
            classes: vec![
                ClassSpec::new(
                    "short",
                    0.7,
                    SizeDist::Uniform { min: 16, max: 4_096 },
                    LifetimeDist::Exponential { mean: 200_000.0 },
                ),
                ClassSpec::new("immortal", 0.3, SizeDist::Fixed(256), LifetimeDist::Immortal),
            ],
            phase_period: None,
            seed,
        };
        let config = SimConfig::paper().with_curve().with_invariant_checks(true);
        for kind in PolicyKind::ALL {
            let reference = run_at(
                &mut SynthSource::new(spec.clone()).unwrap(),
                kind,
                &config,
                1,
            );
            for &block in BLOCKS {
                let blocked = run_at(
                    &mut SynthSource::new(spec.clone()).unwrap(),
                    kind,
                    &config,
                    block,
                );
                assert_same(kind, block, &reference, &blocked)?;
            }
        }
    }
}

/// A trigger dense enough to fire every ~5 events: blocks of every size
/// straddle many scavenges, so nearly every segment ends on a trigger.
#[test]
fn trigger_denser_than_any_block_still_matches() {
    let mut b = TraceBuilder::new("dense-trigger");
    b.exec_seconds(1.0);
    let mut ids = Vec::new();
    for i in 0..2_000 {
        ids.push(b.alloc(10_000));
        if i % 3 == 0 {
            if let Some(id) = ids.pop() {
                b.free(id);
            }
        }
    }
    let trace = b.finish().compile().unwrap();
    let config = SimConfig {
        trigger: Trigger::Allocation(Bytes::new(50_000)),
        ..SimConfig::paper()
    }
    .with_curve()
    .with_invariant_checks(true);
    for kind in PolicyKind::ALL {
        let reference = run_at(&mut CompiledSource::new(&trace), kind, &config, 1)
            .expect("reference run succeeds");
        assert!(
            reference.report.collections > 300,
            "the trigger must fire many times per block"
        );
        for &block in BLOCKS {
            let blocked = run_at(&mut CompiledSource::new(&trace), kind, &config, block)
                .expect("blocked run succeeds");
            assert_eq!(reference, blocked, "{kind} block {block}");
        }
    }
}

/// Checkpoint cadence misaligned with the block size: the blocked run
/// must write checkpoints at exactly the same events with exactly the
/// same state, and a run resumed from a blocked checkpoint must finish
/// identically to the straight reference.
#[test]
fn checkpoint_cadence_survives_blocking_and_resume() {
    let trace = {
        let mut b = TraceBuilder::new("ckp-blocks");
        b.exec_seconds(1.0);
        let mut ids = Vec::new();
        for i in 0..3_000 {
            ids.push(b.alloc(5_000));
            if i % 2 == 0 {
                if let Some(id) = ids.pop() {
                    b.free(id);
                }
            }
        }
        b.finish().compile().unwrap()
    };
    let dir = temp_dir("ckp");
    std::fs::create_dir_all(&dir).unwrap();
    let config = SimConfig::paper().with_curve().with_invariant_checks(true);
    let kind = PolicyKind::DtbFm;

    let ref_path = dir.join("reference.ckp");
    let reference = {
        let mut policy = kind.build(&PolicyConfig::paper());
        Sim::new(config)
            .block_events(1)
            .control(RunControl::new().with_checkpoints(&ref_path, 97))
            .run(&mut CompiledSource::new(&trace), &mut policy)
            .expect("reference run")
    };

    let blk_path = dir.join("blocked.ckp");
    let blocked = {
        let mut policy = kind.build(&PolicyConfig::paper());
        Sim::new(config)
            .block_events(64)
            .control(RunControl::new().with_checkpoints(&blk_path, 97))
            .run(&mut CompiledSource::new(&trace), &mut policy)
            .expect("blocked run")
    };
    assert_eq!(reference, blocked);

    // Both legs' final checkpoints sit on the same event boundary with
    // the same engine-visible state.
    let ref_ckp = load_checkpoint(&ref_path).expect("reference checkpoint");
    let blk_ckp = load_checkpoint(&blk_path).expect("blocked checkpoint");
    assert_eq!(ref_ckp.events, blk_ckp.events);
    assert_eq!(ref_ckp.events % 97, 0);
    assert_eq!(ref_ckp.clock, blk_ckp.clock);
    assert_eq!(ref_ckp.allocated, blk_ckp.allocated);
    assert_eq!(ref_ckp.reclaimed, blk_ckp.reclaimed);
    assert_eq!(ref_ckp.since_gc, blk_ckp.since_gc);
    assert_eq!(ref_ckp.metrics, blk_ckp.metrics);

    // A budget-interrupted blocked run resumed from its checkpoint
    // finishes bit-identically to the straight reference.
    let int_path = dir.join("interrupted.ckp");
    let interrupted = {
        let mut policy = kind.build(&PolicyConfig::paper());
        Sim::new(config.with_budget(SimBudget::events(1_500)))
            .block_events(64)
            .control(RunControl::new().with_checkpoints(&int_path, 97))
            .run(&mut CompiledSource::new(&trace), &mut policy)
    };
    assert!(matches!(interrupted, Err(SimError::BudgetExceeded { .. })));
    let ckp = load_checkpoint(&int_path).expect("interrupt checkpoint");
    let resumed = {
        let mut policy = kind.build(&PolicyConfig::paper());
        Sim::new(config)
            .block_events(64)
            .control(RunControl::new().resuming(ckp))
            .run(&mut CompiledSource::new(&trace), &mut policy)
            .expect("resumed run")
    };
    assert_eq!(reference, resumed);
    std::fs::remove_dir_all(&dir).ok();
}

/// Typed error paths surface identically at every block size: watchdog
/// budgets, malformed trace shapes, and shard corruption.
#[test]
fn typed_errors_match_the_reference_at_every_block_size() {
    let trace = {
        let mut b = TraceBuilder::new("errors");
        b.exec_seconds(1.0);
        for _ in 0..600 {
            let id = b.alloc(10_000);
            b.free(id);
        }
        b.finish().compile().unwrap()
    };
    let config = SimConfig::paper().with_invariant_checks(true);
    let kind = PolicyKind::Full;

    // Event budget trips mid-stream with the same clock.
    let budgeted = config.with_budget(SimBudget::events(137));
    let reference = run_at(&mut CompiledSource::new(&trace), kind, &budgeted, 1).unwrap_err();
    for &block in BLOCKS {
        let blocked = run_at(&mut CompiledSource::new(&trace), kind, &budgeted, block).unwrap_err();
        assert_eq!(reference, blocked, "budget error at block {block}");
    }

    // Malformed shapes: reversed births and death-before-birth.
    for bad in [
        dtb_trace::corrupt::reversed_births(&trace),
        dtb_trace::corrupt::death_before_birth(&trace, 41),
    ] {
        let reference = run_at(&mut CompiledSource::new(&bad), kind, &config, 1).unwrap_err();
        for &block in BLOCKS {
            let blocked = run_at(&mut CompiledSource::new(&bad), kind, &config, block).unwrap_err();
            assert_eq!(reference, blocked, "shape error at block {block}");
        }
    }

    // Shard corruption: the same typed source error at the same clock.
    let dir = temp_dir("corrupt");
    ctc::write_shards(&dir, &trace, 64).unwrap();
    let shard = dir.join("shard-00001.dtbctc");
    let mut raw = std::fs::read(&shard).unwrap();
    let mid = raw.len() / 2;
    raw[mid] ^= 0x20;
    std::fs::write(&shard, raw).unwrap();
    let reference = run_at(&mut ShardReader::open(&dir).unwrap(), kind, &config, 1).unwrap_err();
    assert!(matches!(reference, SimError::Source { .. }));
    for &block in BLOCKS {
        let blocked =
            run_at(&mut ShardReader::open(&dir).unwrap(), kind, &config, block).unwrap_err();
        assert_eq!(
            format!("{reference:?}"),
            format!("{blocked:?}"),
            "corruption error at block {block}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
