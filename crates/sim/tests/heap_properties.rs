//! Property tests for the oracle heap against a naive reference model.

use dtb_core::time::{Bytes, VirtualTime};
use dtb_sim::heap::{OracleHeap, SimObject};
use proptest::prelude::*;

/// Random object populations: strictly increasing births, random sizes,
/// optional deaths after birth.
fn population() -> impl Strategy<Value = Vec<SimObject>> {
    prop::collection::vec(
        (1u64..=5_000, 1u32..=10_000, prop::option::of(1u64..=50_000)),
        0..300,
    )
    .prop_map(|raw| {
        let mut birth = 0u64;
        raw.into_iter()
            .map(|(gap, size, death_after)| {
                birth += gap;
                SimObject {
                    birth: VirtualTime::from_bytes(birth),
                    size,
                    death: death_after.map(|d| VirtualTime::from_bytes(birth + d)),
                }
            })
            .collect()
    })
}

/// The reference model: plain filters over the population.
fn naive_outcome(pop: &[SimObject], tb: VirtualTime, now: VirtualTime) -> (u64, u64, u64) {
    let mut traced = 0u64;
    let mut reclaimed = 0u64;
    let mut tenured_garbage = 0u64;
    for o in pop {
        let threatened = o.birth > tb;
        let live = o.is_live_at(now);
        match (threatened, live) {
            (true, true) => traced += o.size as u64,
            (true, false) => reclaimed += o.size as u64,
            (false, false) => tenured_garbage += o.size as u64,
            (false, true) => {}
        }
    }
    (traced, reclaimed, tenured_garbage)
}

proptest! {
    #[test]
    fn scavenge_matches_naive_model(
        pop in population(),
        tb in 0u64..=2_000_000,
        extra in 0u64..=100_000,
    ) {
        let now = pop
            .last()
            .map_or(VirtualTime::ZERO, |o| o.birth)
            .advance(Bytes::new(extra));
        let tb = VirtualTime::from_bytes(tb).min(now);
        let mut heap = OracleHeap::new();
        for o in &pop {
            heap.insert(*o);
        }
        let before = heap.mem_in_use();
        let (traced, reclaimed, tenured) = naive_outcome(&pop, tb, now);
        let out = heap.scavenge(tb, now);
        prop_assert_eq!(out.traced, Bytes::new(traced));
        prop_assert_eq!(out.reclaimed, Bytes::new(reclaimed));
        prop_assert_eq!(out.tenured_garbage, Bytes::new(tenured));
        prop_assert_eq!(out.surviving + out.reclaimed, before);
        prop_assert_eq!(heap.mem_in_use(), out.surviving);
    }

    #[test]
    fn second_scavenge_with_zero_boundary_leaves_only_live(
        pop in population(),
        tb in 0u64..=2_000_000,
    ) {
        let now = pop.last().map_or(VirtualTime::ZERO, |o| o.birth);
        let tb = VirtualTime::from_bytes(tb).min(now);
        let mut heap = OracleHeap::new();
        for o in &pop {
            heap.insert(*o);
        }
        heap.scavenge(tb, now);
        // An untenuring full scavenge right after: memory equals exactly
        // the live bytes, regardless of the first boundary.
        let out = heap.scavenge(VirtualTime::ZERO, now);
        let live: u64 = pop
            .iter()
            .filter(|o| o.is_live_at(now))
            .map(|o| o.size as u64)
            .sum();
        prop_assert_eq!(out.surviving, Bytes::new(live));
        prop_assert_eq!(out.tenured_garbage, Bytes::ZERO);
    }

    #[test]
    fn survival_snapshot_agrees_with_filter(
        pop in population(),
        queries in prop::collection::vec(0u64..=3_000_000, 1..20),
    ) {
        use dtb_core::policy::SurvivalEstimator;
        let now = pop.last().map_or(VirtualTime::ZERO, |o| o.birth);
        let mut heap = OracleHeap::new();
        for o in &pop {
            heap.insert(*o);
        }
        let snap = heap.survival_snapshot(now);
        for q in queries {
            let tb = VirtualTime::from_bytes(q);
            let naive: u64 = pop
                .iter()
                .filter(|o| o.birth > tb && o.is_live_at(now))
                .map(|o| o.size as u64)
                .sum();
            prop_assert_eq!(snap.surviving_born_after(tb), Bytes::new(naive));
        }
    }
}
