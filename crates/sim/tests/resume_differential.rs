//! Differential testing for checkpoint/resume: a run interrupted at an
//! arbitrary point and resumed from its last `DTBCKP01` checkpoint must
//! be **bit-identical** — report, scavenge history, and memory curve —
//! to a run that never stopped, for all six policies, over both
//! in-memory and sharded on-disk sources.
//!
//! The interruption is real, not simulated: the first leg runs under a
//! `SimBudget` that trips mid-trace (a supported way to stop a run), the
//! engine having checkpointed every 997 events along the way; the second
//! leg loads the last checkpoint and runs to completion without the
//! budget — the physics-only compatibility guard explicitly allows
//! budget and invariant-checking differences between the legs.

use dtb_core::policy::{PolicyConfig, PolicyKind};
use dtb_sim::engine::{simulate_source, RunControl, Sim, SimBudget, SimConfig, SimRun};
use dtb_sim::{load_checkpoint, CkpError, SimError};
use dtb_trace::programs::Program;
use dtb_trace::{ctc, CompiledSource, EventSource, ShardReader};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

const CHECKPOINT_EVERY: u64 = 997;
const INTERRUPT_AFTER: u64 = 2_500;

fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("dtb-resume-diff-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs one policy straight through, then interrupted + resumed, and
/// asserts the two runs are identical. `make_source` builds a fresh
/// cursor per leg.
fn assert_resume_matches<S: EventSource>(
    kind: PolicyKind,
    mut make_source: impl FnMut() -> S,
    ckp_path: &std::path::Path,
) {
    let policy_cfg = PolicyConfig::paper();
    let config = SimConfig::paper().with_curve().with_invariant_checks(true);

    let straight: SimRun = {
        let mut policy = kind.build(&policy_cfg);
        simulate_source(&mut make_source(), &mut policy, &config).expect("straight run")
    };

    // Leg 1: checkpoint every 997 events, interrupted by an event budget.
    let budgeted = config.with_budget(SimBudget::events(INTERRUPT_AFTER));
    let interrupted = {
        let mut policy = kind.build(&policy_cfg);
        Sim::new(budgeted)
            .control(RunControl::new().with_checkpoints(ckp_path, CHECKPOINT_EVERY))
            .run(&mut make_source(), &mut policy)
    };
    assert!(
        matches!(interrupted, Err(SimError::BudgetExceeded { .. })),
        "{kind}: expected a budget interruption, got {interrupted:?}"
    );

    // The checkpoint on disk is from the last whole cadence before the
    // interruption and names this exact run.
    let ckp = load_checkpoint(ckp_path).expect("readable checkpoint");
    let policy = kind.build(&policy_cfg);
    assert_eq!(ckp.policy, policy.name());
    assert_eq!(ckp.events % CHECKPOINT_EVERY, 0);
    assert!(ckp.events > 0 && ckp.events <= INTERRUPT_AFTER);

    // Leg 2: resume from it, no budget this time.
    let resumed: SimRun = {
        let mut policy = kind.build(&policy_cfg);
        Sim::new(config)
            .control(RunControl::new().resuming(ckp))
            .run(&mut make_source(), &mut policy)
            .expect("resumed run")
    };

    assert_eq!(
        straight.report.history, resumed.report.history,
        "{kind}: scavenge histories diverge across resume"
    );
    assert_eq!(
        straight.report, resumed.report,
        "{kind}: reports diverge across resume"
    );
    assert_eq!(
        straight.curve, resumed.curve,
        "{kind}: memory curves diverge across resume"
    );
}

/// In-memory source: every policy resumes bit-identically.
#[test]
fn resume_is_bit_identical_for_all_policies_in_memory() {
    let trace = Program::Cfrac.compiled();
    let dir = temp_dir("mem");
    for kind in PolicyKind::ALL {
        let path = dir.join(format!("{kind}.dtbckp"));
        assert_resume_matches(kind, || CompiledSource::new(&trace), &path);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Sharded on-disk store: the resume seeks the store mid-stream and
/// still reproduces the uninterrupted run exactly.
#[test]
fn resume_is_bit_identical_for_all_policies_on_sharded_store() {
    let trace = Program::Cfrac.compiled();
    let dir = temp_dir("shard");
    let store = dir.join("store");
    ctc::write_shards(&store, &trace, 10_000).expect("write store");
    for kind in PolicyKind::ALL {
        let path = dir.join(format!("{kind}.dtbckp"));
        assert_resume_matches(
            kind,
            || ShardReader::open(&store).expect("open store"),
            &path,
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The compatibility guard refuses checkpoints from a different run:
/// wrong policy, wrong trace, wrong physics — each a typed
/// `SimError::Checkpoint` carrying a `CkpError::Mismatch`.
#[test]
fn resume_refuses_foreign_checkpoints() {
    let trace = Program::Cfrac.compiled();
    let dir = temp_dir("guard");
    let path = dir.join("full.dtbckp");
    let policy_cfg = PolicyConfig::paper();
    let config = SimConfig::paper().with_budget(SimBudget::events(INTERRUPT_AFTER));
    {
        let mut policy = PolicyKind::Full.build(&policy_cfg);
        let _ = Sim::new(config)
            .control(RunControl::new().with_checkpoints(&path, CHECKPOINT_EVERY))
            .run_trace(&trace, &mut policy);
    }
    let ckp = load_checkpoint(&path).expect("readable checkpoint");

    // Wrong policy.
    let err = {
        let mut policy = PolicyKind::DtbFm.build(&policy_cfg);
        Sim::new(SimConfig::paper())
            .control(RunControl::new().resuming(ckp.clone()))
            .run_trace(&trace, &mut policy)
            .unwrap_err()
    };
    match err {
        SimError::Checkpoint {
            source: CkpError::Mismatch { what, .. },
            ..
        } => assert_eq!(what, "policy"),
        other => panic!("expected a policy mismatch, got {other}"),
    }

    // Wrong trace.
    let ghost = Program::Ghost1.compiled();
    let err = {
        let mut policy = PolicyKind::Full.build(&policy_cfg);
        Sim::new(SimConfig::paper())
            .control(RunControl::new().resuming(ckp.clone()))
            .run_trace(&ghost, &mut policy)
            .unwrap_err()
    };
    match err {
        SimError::Checkpoint {
            source: CkpError::Mismatch { what, .. },
            ..
        } => assert_eq!(what, "trace"),
        other => panic!("expected a trace mismatch, got {other}"),
    }

    // Wrong physics: curve recording differs.
    let err = {
        let mut policy = PolicyKind::Full.build(&policy_cfg);
        Sim::new(SimConfig::paper().with_curve())
            .control(RunControl::new().resuming(ckp))
            .run_trace(&trace, &mut policy)
            .unwrap_err()
    };
    assert!(
        matches!(
            err,
            SimError::Checkpoint {
                source: CkpError::Mismatch { .. },
                ..
            }
        ),
        "expected a physics mismatch, got {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Checkpoint files round-trip exactly: what the engine wrote mid-run
/// is what `load_checkpoint` returns, stable across repeated loads.
#[test]
fn emitted_checkpoints_round_trip() {
    let trace = Program::Cfrac.compiled();
    let dir = temp_dir("roundtrip");
    for kind in PolicyKind::ALL {
        let path = dir.join(format!("{kind}.dtbckp"));
        let mut policy = kind.build(&PolicyConfig::paper());
        let _ = Sim::new(SimConfig::paper().with_budget(SimBudget::events(INTERRUPT_AFTER)))
            .control(RunControl::new().with_checkpoints(&path, CHECKPOINT_EVERY))
            .run_trace(&trace, &mut policy);
        let first = load_checkpoint(&path).expect("readable checkpoint");
        let second = load_checkpoint(&path).expect("stable checkpoint");
        assert_eq!(first, second, "{kind}: checkpoint load is unstable");
        assert_eq!(first.trace, trace.meta.name);
        // The paper's six policies are stateless; their saved state is
        // empty and restores cleanly.
        assert!(first.policy_state.is_empty());
    }
    let _ = std::fs::remove_dir_all(&dir);
}
