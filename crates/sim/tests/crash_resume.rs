//! Crash-safety end to end: an evaluation SIGKILLed mid-matrix resumes
//! from its durable journal and produces the same matrix, cell for
//! cell, as a run that never crashed.
//!
//! The crash is real: the parent test re-spawns this test binary
//! (filtered to [`crash_child_worker`]) with the journal directory in an
//! environment variable, waits until the child's journal records at
//! least two completed cells, and `SIGKILL`s it — no destructors, no
//! flushes, possibly a torn line mid-write. The resumed evaluation must
//! reuse every journaled cell verbatim, recompute only the missing
//! ones, and match the clean run bit for bit.

use dtb_core::policy::PolicyKind;
use dtb_sim::exec::Evaluation;
use dtb_sim::journal::{journal_path, read_journal};
use dtb_trace::programs::Program;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CHILD_ENV: &str = "DTB_CRASH_CHILD_DIR";

fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("dtb-crash-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The matrix both processes run: one workload, all six collectors,
/// serial so the journal grows in a predictable order.
fn evaluation() -> Evaluation {
    Evaluation::new()
        .programs([Program::Cfrac])
        .policies(PolicyKind::ALL)
        .baselines(false)
        .parallelism(1)
}

/// Worker half of the crash test: does nothing unless spawned by
/// [`sigkilled_run_resumes_to_the_clean_matrix`] with the journal
/// directory in the environment. Paces itself half a second per cell so
/// the parent reliably kills it with cells still missing.
#[test]
fn crash_child_worker() {
    let Some(dir) = std::env::var_os(CHILD_ENV) else {
        return;
    };
    let _ = evaluation()
        .resume(PathBuf::from(dir))
        .on_cell(|_| std::thread::sleep(Duration::from_millis(500)))
        .run();
}

/// Counts fully-written (newline-terminated) cell lines in the journal.
fn journaled_cells(path: &Path) -> usize {
    let Ok(data) = std::fs::read(path) else {
        return 0;
    };
    data.split_inclusive(|b| *b == b'\n')
        .filter(|line| line.ends_with(b"\n") && line.len() > 18 && &line[16..19] == b" C ")
        .count()
}

#[test]
fn sigkilled_run_resumes_to_the_clean_matrix() {
    let dir = temp_dir("sigkill");
    let exe = std::env::current_exe().expect("test binary path");
    let mut child = Command::new(exe)
        .args(["crash_child_worker", "--exact", "--test-threads=1"])
        .env(CHILD_ENV, &dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn crash child");

    // Wait for two durable cells, then kill without ceremony.
    let journal = journal_path(&dir);
    let deadline = Instant::now() + Duration::from_secs(60);
    while journaled_cells(&journal) < 2 {
        assert!(Instant::now() < deadline, "child never journaled two cells");
        assert!(
            child.try_wait().expect("child status").is_none(),
            "child finished before it could be killed"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    child.kill().expect("SIGKILL the child");
    child.wait().expect("reap the child");

    let survived = read_journal(&dir).expect("journal readable after SIGKILL");
    let done_before = survived.cells.iter().filter(|c| c.is_completed()).count();
    assert!(
        done_before >= 2,
        "polled for two cells, found {done_before}"
    );
    assert!(
        done_before < PolicyKind::ALL.len(),
        "child was killed too late to leave work for the resume"
    );

    // Resume in this process: only the missing cells are computed.
    let computed = Arc::new(AtomicUsize::new(0));
    let counter = computed.clone();
    let resumed = evaluation()
        .resume(&dir)
        .on_cell(move |_| {
            counter.fetch_add(1, Ordering::Relaxed);
        })
        .run();
    let computed = computed.load(Ordering::Relaxed);
    assert_eq!(computed, PolicyKind::ALL.len() - done_before);

    // Cell for cell, the crashed-and-resumed matrix is the clean matrix.
    let clean = evaluation().run();
    assert!(resumed.is_complete());
    for kind in PolicyKind::ALL {
        assert_eq!(
            resumed.get(Program::Cfrac, kind).unwrap(),
            clean.get(Program::Cfrac, kind).unwrap(),
            "{kind}: resumed cell diverges from the clean run"
        );
    }
    // Every attempt was a first attempt, journaled or fresh.
    for (_, cell) in resumed.cells() {
        assert_eq!(cell.attempts, 1);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Without a crash, resuming a finished journal recomputes nothing and
/// reproduces the matrix from disk alone.
#[test]
fn finished_journal_resumes_without_recomputing() {
    let dir = temp_dir("finished");
    let eval = || {
        Evaluation::new()
            .programs([Program::Cfrac])
            .policies([PolicyKind::Full, PolicyKind::DtbFm])
            .baselines(true)
    };
    let first = eval().journal(&dir).run();
    assert!(first.is_complete());

    let computed = Arc::new(AtomicUsize::new(0));
    let counter = computed.clone();
    let resumed = eval()
        .resume(&dir)
        .on_cell(move |_| {
            counter.fetch_add(1, Ordering::Relaxed);
        })
        .run();
    // Baseline rows have no SimRun in the journal (they are recomputed —
    // they're cheap, exact, and carry no curve), so only policy rows are
    // skipped.
    assert!(computed.load(Ordering::Relaxed) <= 2);
    for (col, cell) in first.cells() {
        let twin = resumed
            .column_by_name(col.name())
            .unwrap()
            .cells
            .iter()
            .find(|c| c.row == cell.row)
            .unwrap();
        assert_eq!(cell.report(), twin.report(), "{} diverges", cell.row);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Resuming against a directory with no journal — or a zero-byte one,
/// as a crash before the header fsync leaves behind — is a fresh run
/// with a warning, not an error. Only interior corruption is refused.
#[test]
fn resume_with_missing_or_empty_journal_starts_fresh() {
    let eval = || {
        Evaluation::new()
            .programs([Program::Cfrac])
            .policies([PolicyKind::Full])
            .baselines(false)
    };

    // Missing directory entirely.
    let dir = temp_dir("fresh-missing");
    let matrix = eval().resume(&dir).try_run().expect("fresh run");
    assert!(matrix.is_complete());
    // The fresh run journaled its cells, so a second resume reuses them.
    let computed = Arc::new(AtomicUsize::new(0));
    let counter = computed.clone();
    let again = eval()
        .resume(&dir)
        .on_cell(move |_| {
            counter.fetch_add(1, Ordering::Relaxed);
        })
        .run();
    assert!(again.is_complete());
    assert_eq!(computed.load(Ordering::Relaxed), 0);
    let _ = std::fs::remove_dir_all(&dir);

    // Zero-byte journal file (crash before the header line landed).
    let dir = temp_dir("fresh-empty");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(journal_path(&dir), b"").unwrap();
    let matrix = eval()
        .resume(&dir)
        .try_run()
        .expect("fresh run over empty journal");
    assert!(matrix.is_complete());
    let _ = std::fs::remove_dir_all(&dir);
}

/// A journal from a differently-shaped evaluation is refused with a
/// typed mismatch, not silently mixed in.
#[test]
fn resume_refuses_a_foreign_journal() {
    let dir = temp_dir("foreign");
    let _ = Evaluation::new()
        .programs([Program::Cfrac])
        .policies([PolicyKind::Full])
        .baselines(false)
        .journal(&dir)
        .run();
    let err = Evaluation::new()
        .programs([Program::Cfrac])
        .policies([PolicyKind::Fixed1])
        .baselines(false)
        .resume(&dir)
        .try_run()
        .unwrap_err();
    assert!(
        matches!(err, dtb_sim::CkpError::Mismatch { .. }),
        "expected a typed journal mismatch, got {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
