//! Determinism suite for the intra-cell parallel engine: a run with
//! `Sim::threads(k)` must be **bit-identical** — report, scavenge
//! history, and memory curve — to a serial run (`threads(1)`), for all
//! six policies, over both in-memory and sharded on-disk sources, and
//! for every thread count tried.
//!
//! This is the contract that makes [`Evaluation::intra_cell_threads`]
//! safe to flip on anywhere: the parallel decomposition is an execution
//! strategy, never an approximation. Error paths must agree too — a
//! budget cap trips at the same event with the same typed error either
//! way.

use dtb_core::policy::{PolicyConfig, PolicyKind};
use dtb_core::time::Bytes;
use dtb_sim::engine::{Sim, SimBudget, SimConfig, SimRun};
use dtb_sim::trigger::Trigger;
use dtb_sim::{Evaluation, NaiveHeap, SimError};
use dtb_trace::programs::Program;
use dtb_trace::{ctc, CompiledSource, EventSource, ShardReader};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("dtb-intra-cell-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// The serial run and every parallel thread count agree bit-for-bit.
fn assert_threads_agree<S: EventSource>(kind: PolicyKind, mut make_source: impl FnMut() -> S) {
    let policy_cfg = PolicyConfig::paper();
    let config = SimConfig::paper().with_curve().with_invariant_checks(true);
    let serial: SimRun = {
        let mut policy = kind.build(&policy_cfg);
        Sim::new(config)
            .threads(1)
            .run(&mut make_source(), &mut policy)
            .expect("serial run")
    };
    for threads in [2, 3, 8] {
        let parallel: SimRun = {
            let mut policy = kind.build(&policy_cfg);
            Sim::new(config)
                .threads(threads)
                .run(&mut make_source(), &mut policy)
                .expect("parallel run")
        };
        assert_eq!(
            serial.report.history, parallel.report.history,
            "{kind}: scavenge histories diverge at {threads} threads"
        );
        assert_eq!(
            serial.report, parallel.report,
            "{kind}: reports diverge at {threads} threads"
        );
        assert_eq!(
            serial.curve, parallel.curve,
            "{kind}: memory curves diverge at {threads} threads"
        );
    }
}

#[test]
fn parallel_is_bit_identical_for_all_policies_in_memory() {
    let trace = Program::Cfrac.compiled();
    for kind in PolicyKind::ALL {
        assert_threads_agree(kind, || CompiledSource::new(&trace));
    }
}

#[test]
fn parallel_is_bit_identical_for_all_policies_sharded() {
    let trace = Program::Ghost1.compiled();
    let dir = temp_dir("shard");
    let store = dir.join("store");
    ctc::write_shards(&store, &trace, 10_000).expect("write store");
    for kind in PolicyKind::ALL {
        assert_threads_agree(kind, || ShardReader::open(&store).expect("open store"));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A budget interruption is the same typed error at the same clock,
/// serial or parallel — and the parallel pre-read must not run past the
/// cap (that is what keeps budgeted runs over unbounded sources finite).
#[test]
fn budget_errors_agree_across_thread_counts() {
    let trace = Program::Cfrac.compiled();
    let config = SimConfig::paper().with_budget(SimBudget::events(2_500));
    let serial = {
        let mut policy = PolicyKind::DtbMem.build(&PolicyConfig::paper());
        Sim::new(config)
            .threads(1)
            .run_trace(&trace, &mut policy)
            .unwrap_err()
    };
    let parallel = {
        let mut policy = PolicyKind::DtbMem.build(&PolicyConfig::paper());
        Sim::new(config)
            .threads(4)
            .run_trace(&trace, &mut policy)
            .unwrap_err()
    };
    assert!(matches!(serial, SimError::BudgetExceeded { .. }));
    assert_eq!(format!("{serial:?}"), format!("{parallel:?}"));
}

/// Corrupted traces fail with the same typed error under the parallel
/// drive: shape checks replay event-by-event before any heap effect.
#[test]
fn corrupted_traces_fail_identically_in_parallel() {
    use dtb_trace::corrupt::{death_before_birth, reversed_births};
    let trace = Program::Cfrac.compiled();
    for bad in [reversed_births(&trace), death_before_birth(&trace, 7)] {
        let serial = {
            let mut policy = PolicyKind::Full.build(&PolicyConfig::paper());
            Sim::new(SimConfig::paper())
                .threads(1)
                .run_trace(&bad, &mut policy)
                .unwrap_err()
        };
        let parallel = {
            let mut policy = PolicyKind::Full.build(&PolicyConfig::paper());
            Sim::new(SimConfig::paper())
                .threads(4)
                .run_trace(&bad, &mut policy)
                .unwrap_err()
        };
        assert_eq!(serial, parallel);
    }
}

/// Ineligible runs (non-allocation triggers, non-default heaps) fall
/// back to the serial engine and still produce the serial answer.
#[test]
fn ineligible_runs_fall_back_to_serial() {
    let trace = Program::Cfrac.compiled();
    let ceiling = SimConfig {
        trigger: Trigger::MemoryCeiling(Bytes::new(2_000_000)),
        ..SimConfig::paper()
    };
    let mut a = PolicyKind::Full.build(&PolicyConfig::paper());
    let mut b = PolicyKind::Full.build(&PolicyConfig::paper());
    let serial = Sim::new(ceiling).threads(1).run_trace(&trace, &mut a);
    let threaded = Sim::new(ceiling).threads(4).run_trace(&trace, &mut b);
    assert_eq!(serial.unwrap(), threaded.unwrap());

    let mut a = PolicyKind::DtbFm.build(&PolicyConfig::paper());
    let mut b = PolicyKind::DtbFm.build(&PolicyConfig::paper());
    let naive_serial = Sim::new(SimConfig::paper())
        .heap::<NaiveHeap>()
        .threads(1)
        .run_trace(&trace, &mut a);
    let naive_threaded = Sim::new(SimConfig::paper())
        .heap::<NaiveHeap>()
        .threads(4)
        .run_trace(&trace, &mut b);
    assert_eq!(naive_serial.unwrap(), naive_threaded.unwrap());
}

/// The executor knob: an evaluation with `intra_cell_threads(k)` yields
/// the same matrix as the fully serial one, cell for cell.
#[test]
fn evaluation_intra_cell_threads_matches_serial_matrix() {
    let build = |threads: usize| {
        Evaluation::new()
            .programs([Program::Cfrac])
            .parallelism(1)
            .intra_cell_threads(threads)
            .run()
    };
    let serial = build(1);
    let parallel = build(3);
    for ((sc, s), (pc, p)) in serial.cells().zip(parallel.cells()) {
        assert_eq!(sc.name, pc.name);
        assert_eq!(s.row, p.row);
        assert_eq!(s.run(), p.run(), "{}/{}: cell diverged", sc.name, s.row);
    }
}
