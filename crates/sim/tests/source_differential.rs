//! Differential testing: streaming event sources against in-memory
//! replay, driven through the full engine (the PR-3 heap differential's
//! companion at the source layer).
//!
//! Two source families are exercised:
//!
//! * [`ShardReader`] — random compiled traces are written to an on-disk
//!   `DTBCTC01` store, then replayed record-at-a-time; and
//! * [`SynthSource`] — an unbounded generator, materialized once via
//!   [`collect_source`] to obtain its in-memory twin.
//!
//! For **all six policies** the streamed run must be identical to the
//! in-memory run — every scavenge record, report metric, and curve point
//! — and the streaming baselines must match the resident ones. Invariant
//! checks stay on, so a divergence inside the engine (not just at the
//! output) also fails the property.

use dtb_core::policy::{PolicyConfig, PolicyKind};
use dtb_sim::baseline::{live_report, live_report_source, no_gc_report, no_gc_report_source};
use dtb_sim::engine::{simulate, simulate_source, SimConfig};
use dtb_trace::event::CompiledTrace;
use dtb_trace::{collect_source, ctc, ObjectId, ShardReader, SynthSource, TraceBuilder};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One allocation step: object size plus an optional death, scheduled
/// `die_after` allocation events later (0 = dies immediately).
type Op = (u32, Option<u8>);

/// Builds a valid compiled trace from a random op list (the same shape as
/// `heap_differential.rs`: multi-megabyte traces with survivors, tenured
/// garbage, and untenuring opportunities).
fn compile_ops(ops: &[Op]) -> CompiledTrace {
    let mut b = TraceBuilder::new("source-differential");
    b.exec_seconds(1.0);
    let mut due: Vec<(usize, ObjectId)> = Vec::new();
    for (i, &(size, die_after)) in ops.iter().enumerate() {
        let id = b.alloc(size);
        if let Some(k) = die_after {
            due.push((i + k as usize, id));
        }
        let mut j = 0;
        while j < due.len() {
            if due[j].0 <= i {
                let (_, dead) = due.swap_remove(j);
                b.free(dead);
            } else {
                j += 1;
            }
        }
    }
    b.finish().compile().expect("builder traces are valid")
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec((1u32..=60_000, prop::option::of(0u8..=30)), 1..400)
}

/// A fresh store directory per case; cases run concurrently across tests.
fn temp_dir() -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("dtb-source-diff-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Asserts a streamed run equals its in-memory twin for all six policies
/// plus both baselines. `make_source` builds a fresh cursor per policy
/// (sources are consumed by reading).
fn assert_source_matches_trace(
    trace: &CompiledTrace,
    mut make_source: impl FnMut() -> Box<dyn dtb_trace::EventSource>,
) -> Result<(), TestCaseError> {
    let config = SimConfig::paper().with_curve().with_invariant_checks(true);
    let policy_cfg = PolicyConfig::paper();
    for kind in PolicyKind::ALL {
        let resident = {
            let mut policy = kind.build(&policy_cfg);
            simulate(trace, &mut policy, &config)
        };
        let streamed = {
            let mut policy = kind.build(&policy_cfg);
            simulate_source(&mut *make_source(), &mut policy, &config)
        };
        match (resident, streamed) {
            (Ok(resident), Ok(streamed)) => {
                prop_assert_eq!(
                    &resident.report.history,
                    &streamed.report.history,
                    "{}: scavenge histories diverge",
                    kind
                );
                prop_assert_eq!(
                    &resident.report,
                    &streamed.report,
                    "{}: reports diverge",
                    kind
                );
                prop_assert_eq!(
                    &resident.curve,
                    &streamed.curve,
                    "{}: memory curves diverge",
                    kind
                );
            }
            (resident, streamed) => prop_assert!(
                false,
                "{}: run outcomes diverge: resident={:?} streamed={:?}",
                kind,
                resident.err(),
                streamed.err()
            ),
        }
    }
    prop_assert_eq!(
        no_gc_report_source(&mut *make_source()).expect("stream stats"),
        no_gc_report(trace),
        "No GC baselines diverge"
    );
    prop_assert_eq!(
        live_report_source(&mut *make_source()).expect("stream stats"),
        live_report(trace),
        "LIVE baselines diverge"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Replaying an on-disk shard store is bit-identical to simulating
    /// the in-memory trace it was written from, for every policy, every
    /// baseline, and any stride.
    #[test]
    fn shard_store_replay_matches_in_memory(
        ops in ops(),
        stride in 1u64..=101,
    ) {
        let trace = compile_ops(&ops);
        let dir = temp_dir();
        ctc::write_shards(&dir, &trace, stride).expect("write store");
        assert_source_matches_trace(&trace, || {
            Box::new(ShardReader::open(&dir).expect("open store"))
        })?;
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Simulating a synthetic generator on the fly is bit-identical to
    /// materializing its records first and simulating those.
    #[test]
    fn synth_source_replay_matches_materialized_trace(
        seed in 0u64..=u64::MAX - 1,
        total_kb in 2_000u64..=6_000,
    ) {
        let spec = dtb_trace::WorkloadSpec {
            seed,
            total_alloc: total_kb * 1_000,
            ..dtb_trace::programs::Program::Cfrac.spec()
        };
        // The source's own record stream, materialized once, is the
        // in-memory twin (SynthSource deliberately differs from
        // `WorkloadSpec::generate`, which snaps deaths to Free-flush
        // clocks — see its docs).
        let trace = collect_source(
            &mut SynthSource::new(spec.clone()).expect("valid spec")
        ).expect("synth never fails");
        assert_source_matches_trace(&trace, || {
            Box::new(SynthSource::new(spec.clone()).expect("valid spec"))
        })?;
    }
}
