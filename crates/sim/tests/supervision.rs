//! Supervised execution: wall-clock deadlines, retry with backoff, and
//! quarantine.
//!
//! A cell that stalls (its source gone slow) is cancelled by the
//! watchdog at the deadline, retried if the retry policy covers
//! transient failures, and finally quarantined as a failed cell — while
//! every healthy cell of the same matrix completes with exactly the
//! reports a clean run produces. Deterministic failures (a broken
//! policy) are never retried: the attempt count stays at 1 no matter
//! how generous the retry policy.

use dtb_core::policy::PolicyKind;
use dtb_sim::exec::{Evaluation, FailureCause, RetryPolicy};
use dtb_sim::fault::{FailAfter, FlakyStore, SlowAfter};
use dtb_trace::programs::Program;
use dtb_trace::{SynthSource, WorkloadSpec};
use std::time::Duration;

/// A small, fast workload for cells that must run to completion.
fn small_spec() -> WorkloadSpec {
    WorkloadSpec {
        total_alloc: 3_000_000,
        ..Program::Cfrac.spec()
    }
}

/// A retry policy with waits measured in microseconds, so tests that
/// exhaust it stay fast.
fn fast_retries(n: u32) -> RetryPolicy {
    RetryPolicy {
        max_retries: n,
        base_delay: Duration::from_micros(100),
        max_delay: Duration::from_millis(2),
    }
}

#[test]
fn deadline_quarantines_a_stalled_cell_while_healthy_cells_complete() {
    // The deadline applies to every cell, so the healthy column must
    // clear it even on a loaded machine: a tiny synth workload (tens of
    // milliseconds) against a 3 s limit, while the stalled column sleeps
    // 50 ms per record and can never finish in time.
    let deadline = Duration::from_secs(3);
    let matrix = Evaluation::new()
        .source("healthy", || {
            Box::new(SynthSource::new(small_spec()).expect("valid spec"))
        })
        .source("stalled", || {
            Box::new(SlowAfter::new(
                SynthSource::new(small_spec()).expect("valid spec"),
                0,
                Duration::from_millis(50),
            ))
        })
        .policies([PolicyKind::Full])
        .baselines(false)
        .cell_deadline(deadline)
        .run();

    // The stalled cell was cancelled, classified as a missed deadline,
    // and not retried (default policy: none).
    let stalled = matrix.column_by_name("stalled").unwrap();
    let cell = &stalled.cells[0];
    assert_eq!(cell.attempts, 1);
    let failure = cell.failure().expect("stalled cell must fail");
    match &failure.cause {
        FailureCause::Deadline { limit, .. } => {
            assert_eq!(*limit, deadline);
        }
        other => panic!("expected a deadline failure, got {other}"),
    }
    assert!(failure.is_transient());
    assert!(failure.to_string().contains("deadline"), "{failure}");

    // The healthy column is untouched and identical to a clean,
    // unsupervised run.
    let clean = Evaluation::new()
        .source("healthy", || {
            Box::new(SynthSource::new(small_spec()).expect("valid spec"))
        })
        .policies([PolicyKind::Full])
        .baselines(false)
        .run();
    let healthy = matrix.column_by_name("healthy").unwrap();
    assert_eq!(healthy.cells[0].attempts, 1);
    assert_eq!(
        healthy.cells[0].report().expect("healthy cell completes"),
        clean.column_by_name("healthy").unwrap().cells[0]
            .report()
            .expect("clean run completes")
    );
}

#[test]
fn deadline_failures_are_retried_then_quarantined() {
    let matrix = Evaluation::new()
        .source("stalled", || {
            Box::new(SlowAfter::new(
                SynthSource::new(small_spec()).expect("valid spec"),
                0,
                Duration::from_millis(20),
            ))
        })
        .policies([PolicyKind::Full])
        .baselines(false)
        .cell_deadline(Duration::from_millis(80))
        .retry(fast_retries(2))
        .run();

    let cell = &matrix.column_by_name("stalled").unwrap().cells[0];
    // First attempt + two retries, all three past the deadline.
    assert_eq!(cell.attempts, 3);
    assert!(matches!(
        cell.failure().expect("still failing").cause,
        FailureCause::Deadline { .. }
    ));
}

#[test]
fn transient_source_failures_are_retried_to_success() {
    // One injected I/O failure shared across the whole cell: the first
    // attempt dies on it, the retry finds the fuse spent and completes.
    let fuse = FlakyStore::<SynthSource>::fuse(1);
    let matrix = Evaluation::new()
        .source("flaky", move || {
            Box::new(FlakyStore::new(
                SynthSource::new(small_spec()).expect("valid spec"),
                fuse.clone(),
            ))
        })
        .policies([PolicyKind::Full])
        .baselines(false)
        .retry(fast_retries(3))
        .run();

    let cell = &matrix.column_by_name("flaky").unwrap().cells[0];
    assert_eq!(cell.attempts, 2);
    let run = cell.run().expect("retry must recover the cell");

    // And bit-identically: the recovered run equals a never-faulted one.
    let clean = Evaluation::new()
        .source("flaky", || {
            Box::new(SynthSource::new(small_spec()).expect("valid spec"))
        })
        .policies([PolicyKind::Full])
        .baselines(false)
        .run();
    let clean_cell = &clean.column_by_name("flaky").unwrap().cells[0];
    assert_eq!(run.report, clean_cell.run().unwrap().report);
}

#[test]
fn deterministic_failures_are_never_retried() {
    let matrix = Evaluation::new()
        .programs([Program::Cfrac])
        .policies([])
        .custom_policy("BROKEN", |_| Box::new(FailAfter::new(0)))
        .baselines(false)
        .retry(fast_retries(5))
        .run();

    let cell = &matrix.column(Program::Cfrac).unwrap().cells[0];
    // A typed policy error is permanent: one attempt, however generous
    // the retry policy.
    assert_eq!(cell.attempts, 1);
    let failure = cell.failure().expect("broken policy fails its cell");
    assert!(!failure.is_transient());
}

#[test]
fn retry_delays_are_deterministic_and_bounded() {
    let policy = RetryPolicy::retries(4);
    for salt in [0u64, 7, 8_191] {
        for attempt in 0..4u32 {
            let a = policy.delay(salt, attempt);
            let b = policy.delay(salt, attempt);
            assert_eq!(a, b, "same (salt, attempt) must wait the same");
            // Exponential window: [capped/2, capped], capped at max_delay.
            let capped = std::cmp::min(policy.base_delay * 2u32.pow(attempt), policy.max_delay);
            assert!(
                a >= capped / 2 && a <= capped,
                "{a:?} outside {capped:?} window"
            );
        }
    }
    // Different cells desynchronize (not a hard guarantee for every
    // pair, but these two differ).
    assert_ne!(
        RetryPolicy::retries(1).delay(1, 0),
        RetryPolicy::retries(1).delay(2, 0)
    );
    assert_eq!(RetryPolicy::NONE.delay(5, 3), Duration::ZERO);
}
