//! Figure 1 as an executable test, at both levels of the stack:
//! the lifetime-oracle simulator and the real heap must both exhibit
//! tenured garbage under a generational boundary, and untenure it when
//! the boundary moves back.

use dtb::core::error::PolicyError;
use dtb::core::policy::{Fixed, Full, TbPolicy};
use dtb::core::time::VirtualTime;
use dtb::sim::engine::{simulate, SimConfig};
use dtb::trace::TraceBuilder;

/// The Figure 1 population in trace form: old objects I, J (garbage),
/// K (live), young objects B, E (garbage) and F (garbage kept by J in the
/// real heap; the oracle simulator knows it is unreachable).
fn figure1_trace() -> dtb::trace::event::CompiledTrace {
    let mut b = TraceBuilder::new("figure1");
    // Old generation (before the first scavenge at 1 MB).
    let i = b.alloc(100_000);
    let j = b.alloc(100_000);
    let _k = b.alloc(100_000);
    b.alloc_filler(7, 100_000); // advance to the 1 MB trigger
                                // Scavenge 1 fires here (1 MB allocated). Everything above survives.
                                // Young generation.
    let bb = b.alloc(50_000);
    let e = b.alloc(50_000);
    let f = b.alloc(50_000);
    // Old garbage: I and J die after the next scavenge tenures them.
    b.free(i);
    b.free(j);
    b.free(bb);
    b.free(e);
    b.free(f);
    b.alloc_filler(9, 100_000); // advance to the 2 MB trigger
    b.alloc_filler(10, 100_000); // and one more interval to 3 MB
    b.finish().compile().expect("well-formed")
}

#[test]
fn fixed1_strands_old_garbage_the_oracle_confirms() {
    let trace = figure1_trace();
    let run = simulate(&trace, &mut Fixed::new(1), &SimConfig::paper()).unwrap();
    // By the last scavenge, I and J (200 KB) died *after* being tenured:
    // FIXED1 never reclaims them.
    let last = run.report.history.last().unwrap();
    let full = simulate(&trace, &mut Full::new(), &SimConfig::paper()).unwrap();
    let full_last = full.report.history.last().unwrap();
    assert!(
        last.surviving.as_u64() >= full_last.surviving.as_u64() + 200_000,
        "FIXED1 surviving {} should strand ≥200 KB over FULL {}",
        last.surviving.as_u64(),
        full_last.surviving.as_u64()
    );
}

#[test]
fn moving_the_boundary_back_untenures_the_stranded_garbage() {
    /// FIXED1 for two scavenges, then a boundary moved back to zero — the
    /// DTB untenuring move as a policy.
    struct Fixed1ThenFull {
        inner: Fixed,
    }
    impl TbPolicy for Fixed1ThenFull {
        fn name(&self) -> &str {
            "FIXED1-THEN-FULL"
        }
        fn select_boundary(
            &mut self,
            ctx: &dtb::core::policy::ScavengeContext<'_>,
        ) -> Result<VirtualTime, PolicyError> {
            if ctx.history.len() < 2 {
                self.inner.select_boundary(ctx)
            } else {
                Ok(VirtualTime::ZERO)
            }
        }
    }

    let trace = figure1_trace();
    let mut policy = Fixed1ThenFull {
        inner: Fixed::new(1),
    };
    let run = simulate(&trace, &mut policy, &SimConfig::paper()).unwrap();
    let records: Vec<_> = run.report.history.iter().collect();
    assert!(records.len() >= 3);
    // Scavenge 2 (FIXED1): I and J are immune garbage — not reclaimed.
    // Scavenge 3 (boundary 0): they are untenured and reclaimed.
    let full = simulate(&trace, &mut Full::new(), &SimConfig::paper()).unwrap();
    assert_eq!(
        run.report.history.last().unwrap().surviving,
        full.report.history.last().unwrap().surviving,
        "after the backward boundary, memory matches the full collector"
    );
    assert!(
        records[2].reclaimed.as_u64() >= 200_000,
        "the untenuring scavenge reclaims the stranded 200 KB (got {})",
        records[2].reclaimed.as_u64()
    );
}

#[test]
fn real_heap_exhibits_figure1_including_nepotism() {
    // The real-heap version, with actual pointers (nepotism included),
    // lives in the figure1_untenuring example and dtb-heap's soundness
    // tests; here we assert the heap agrees with the oracle on the
    // untenuring outcome.
    use dtb::heap::{collect_now, configure, heap_stats, Gc, GcCell, HeapConfig, Trace, Tracer};

    struct Obj {
        edge: GcCell<Option<Gc<Obj>>>,
    }
    // SAFETY: `edge` is the only Gc-bearing field.
    unsafe impl Trace for Obj {
        fn trace(&self, t: &mut Tracer) {
            self.edge.trace(t);
        }
        fn root(&self) {
            self.edge.root();
        }
        fn unroot(&self) {
            self.edge.unroot();
        }
    }
    let obj = || {
        Gc::new(Obj {
            edge: GcCell::new(None),
        })
    };

    configure(HeapConfig::manual_fixed1());
    let i = obj();
    let j = obj();
    let k = obj();
    collect_now();
    collect_now(); // i, j, k immune
    let f = obj();
    j.edge.set(&j, Some(f.clone()));
    drop(i);
    drop(j);
    drop(f);
    let before = heap_stats().mem_in_use;
    let out = collect_now();
    // Nepotism: F is threatened + dead but kept by tenured garbage J.
    assert_eq!(
        out.reclaimed.as_u64(),
        0,
        "nothing reclaimable under FIXED1"
    );
    assert_eq!(heap_stats().mem_in_use, before);

    configure(HeapConfig::manual_full());
    let out = collect_now();
    assert!(out.reclaimed.as_u64() > 0, "untenuring reclaims I, J, F");
    let _ = k.edge.borrow(); // K is intact
}
