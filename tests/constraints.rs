//! Cross-crate integration: the paper's Section 6.1 / 6.2 claims, checked
//! end-to-end (workload generation → simulation → metrics).
//!
//! Debug builds keep to the small/medium presets; `repro_claims` covers
//! the full matrix in release mode.

use dtb::core::policy::{PolicyConfig, PolicyKind, Row};
use dtb::core::time::Bytes;
use dtb::sim::engine::{simulate, SimConfig};
use dtb::sim::exec::Evaluation;
use dtb::sim::metrics::SimReport;
use dtb::trace::event::CompiledTrace;
use dtb::trace::programs::Program;
use std::sync::Arc;

fn compiled(p: Program) -> Arc<CompiledTrace> {
    p.compiled()
}

fn run_kind(
    trace: &CompiledTrace,
    kind: PolicyKind,
    cfg: &PolicyConfig,
    sim: &SimConfig,
) -> SimReport {
    let mut policy = kind.build(cfg);
    simulate(trace, &mut policy, sim)
        .expect("well-formed trace simulates")
        .report
}

fn column(trace: &Arc<CompiledTrace>) -> Vec<SimReport> {
    Evaluation::new().trace(trace.clone()).run().columns()[0]
        .reports()
        .cloned()
        .collect()
}

fn by_policy(reports: &[SimReport], k: PolicyKind) -> &SimReport {
    reports
        .iter()
        .find(|r| r.policy == Row::Policy(k))
        .expect("policy in column")
}

#[test]
fn dtbmem_respects_feasible_memory_budget() {
    let trace = compiled(Program::Espresso1);
    // Feasible means the budget exceeds the live floor plus one full
    // inter-scavenge allocation interval (1 MB): memory peaks right
    // before a scavenge, and no boundary choice can shrink that peak.
    for budget_kb in [1500u64, 2000, 3000] {
        let budgets = PolicyConfig::new(Bytes::new(50_000), Bytes::from_kb(budget_kb));
        let r = run_kind(&trace, PolicyKind::DtbMem, &budgets, &SimConfig::paper());
        assert!(
            r.mem_max.as_u64() <= budget_kb * 1024 * 101 / 100,
            "budget {budget_kb} KB: max {} KB",
            r.mem_kb().1
        );
    }
}

#[test]
fn over_constrained_dtbmem_degrades_toward_full() {
    // A budget below the live floor is impossible; DTBMEM must approach
    // FULL's (memory-optimal) behaviour rather than thrash.
    let trace = compiled(Program::Espresso1);
    let sim = SimConfig::paper();
    let impossible = PolicyConfig::new(Bytes::new(50_000), Bytes::from_kb(50));
    let dtbmem = run_kind(&trace, PolicyKind::DtbMem, &impossible, &sim);
    let full = run_kind(&trace, PolicyKind::Full, &impossible, &sim);
    let ratio = dtbmem.mem_max.as_u64() as f64 / full.mem_max.as_u64() as f64;
    assert!(
        (0.95..=1.10).contains(&ratio),
        "over-constrained DTBMEM max {} vs FULL {}",
        dtbmem.mem_kb().1,
        full.mem_kb().1
    );
}

#[test]
fn dtbmem_converts_memory_budget_into_cpu_savings() {
    // Monotone trade: more memory budget, no more tracing.
    let trace = compiled(Program::Espresso1);
    let sim = SimConfig::paper();
    let mut last_traced = u64::MAX;
    for budget_kb in [200u64, 500, 1500, 4000] {
        let budgets = PolicyConfig::new(Bytes::new(50_000), Bytes::from_kb(budget_kb));
        let r = run_kind(&trace, PolicyKind::DtbMem, &budgets, &sim);
        assert!(
            r.total_traced.as_u64() <= last_traced,
            "budget {budget_kb} KB traced more than a smaller budget"
        );
        last_traced = r.total_traced.as_u64();
    }
}

#[test]
fn dtbfm_median_tracks_pause_budget() {
    let trace = compiled(Program::Espresso1);
    let sim = SimConfig::paper();
    for budget_ms in [50.0, 100.0] {
        let budgets = PolicyConfig::new(
            dtb::core::cost::CostModel::paper().trace_budget_for_pause_ms(budget_ms),
            Bytes::from_kb(1 << 20),
        );
        let r = run_kind(&trace, PolicyKind::DtbFm, &budgets, &sim);
        assert!(
            r.pause_median_ms <= budget_ms * 1.35 && r.pause_median_ms >= budget_ms * 0.4,
            "budget {budget_ms} ms: median {:.1} ms",
            r.pause_median_ms
        );
    }
}

#[test]
fn dtbfm_saves_memory_relative_to_feedmed_on_espresso() {
    // The paper's Section 6.2 showcase.
    let trace = compiled(Program::Espresso1);
    let cfg = PolicyConfig::paper();
    let sim = SimConfig::paper();
    let dtbfm = run_kind(&trace, PolicyKind::DtbFm, &cfg, &sim);
    let feedmed = run_kind(&trace, PolicyKind::FeedMed, &cfg, &sim);
    assert!(
        dtbfm.mem_mean.as_u64() <= feedmed.mem_mean.as_u64() * 102 / 100,
        "DTBFM {} KB vs FEEDMED {} KB",
        dtbfm.mem_kb().0,
        feedmed.mem_kb().0
    );
}

#[test]
fn memory_ordering_full_le_fixed4_le_fixed1() {
    // The classic generational trade, Table 2's structure.
    let trace = compiled(Program::Cfrac);
    let reports = column(&trace);
    let full = by_policy(&reports, PolicyKind::Full).mem_mean;
    let fixed4 = by_policy(&reports, PolicyKind::Fixed4).mem_mean;
    let fixed1 = by_policy(&reports, PolicyKind::Fixed1).mem_mean;
    assert!(full <= fixed4, "FULL {full:?} vs FIXED4 {fixed4:?}");
    assert!(fixed4 <= fixed1, "FIXED4 {fixed4:?} vs FIXED1 {fixed1:?}");
}

#[test]
fn cpu_ordering_fixed1_le_fixed4_le_full() {
    // Table 4's structure, inverse of the memory ordering.
    let trace = compiled(Program::Cfrac);
    let reports = column(&trace);
    let full = by_policy(&reports, PolicyKind::Full).total_traced;
    let fixed4 = by_policy(&reports, PolicyKind::Fixed4).total_traced;
    let fixed1 = by_policy(&reports, PolicyKind::Fixed1).total_traced;
    assert!(fixed1 <= fixed4);
    assert!(fixed4 <= full);
}

#[test]
fn every_collector_bounded_by_live_and_nogc() {
    let trace = compiled(Program::Cfrac);
    let reports = column(&trace);
    let live = reports
        .iter()
        .find(|r| r.policy == Row::Live)
        .unwrap()
        .mem_mean;
    let nogc = reports
        .iter()
        .find(|r| r.policy == Row::NoGc)
        .unwrap()
        .mem_max;
    for kind in PolicyKind::ALL {
        let r = by_policy(&reports, kind);
        assert!(r.mem_mean >= live, "{kind} beat the live floor");
        assert!(r.mem_max <= nogc, "{kind} exceeded no-GC ceiling");
    }
}

#[test]
fn scavenge_records_are_internally_consistent_everywhere() {
    let trace = compiled(Program::Cfrac);
    for kind in PolicyKind::ALL {
        let r = run_kind(&trace, kind, &PolicyConfig::paper(), &SimConfig::paper());
        for rec in r.history.iter() {
            assert!(rec.is_consistent(), "{kind}: {rec:?}");
            assert!(
                rec.boundary <= rec.at,
                "{kind}: boundary after scavenge time"
            );
            assert!(
                rec.traced <= rec.surviving,
                "{kind}: traced exceeds survivors"
            );
        }
    }
}
