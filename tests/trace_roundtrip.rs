//! Cross-crate property tests: trace generation, serialization, and
//! simulation compose without losing information.

use dtb::core::policy::{PolicyConfig, PolicyKind};
use dtb::sim::engine::{simulate, SimConfig};
use dtb::sim::SimRun;
use dtb::trace::event::CompiledTrace;
use dtb::trace::format;
use dtb::trace::lifetime::{LifetimeDist, SizeDist};
use dtb::trace::synth::{ClassSpec, WorkloadSpec};
use proptest::prelude::*;

fn run_kind(
    trace: &CompiledTrace,
    kind: PolicyKind,
    cfg: &PolicyConfig,
    sim: &SimConfig,
) -> SimRun {
    let mut policy = kind.build(cfg);
    simulate(trace, &mut policy, sim).expect("well-formed trace simulates")
}

fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    (
        1u64..=8,            // total alloc (x 100 KB)
        0u64..=50_000,       // initial permanent
        0.0f64..=0.3,        // immortal fraction
        0.0f64..=0.05,       // medium fraction
        500.0f64..=20_000.0, // short mean lifetime
        any::<u64>(),        // seed
    )
        .prop_map(|(mb, perm, imm, med, short_mean, seed)| {
            let short = 1.0 - imm - med;
            WorkloadSpec {
                name: "prop".into(),
                description: String::new(),
                exec_seconds: 1.0,
                total_alloc: mb * 100_000 + perm,
                initial_permanent: perm,
                initial_object_size: 512,
                classes: vec![
                    ClassSpec::new(
                        "imm",
                        imm,
                        SizeDist::PowerOfTwo { min: 32, max: 512 },
                        LifetimeDist::Immortal,
                    ),
                    ClassSpec::new(
                        "med",
                        med,
                        SizeDist::Uniform { min: 64, max: 256 },
                        LifetimeDist::Uniform {
                            min: 100_000,
                            max: 300_000,
                        },
                    ),
                    ClassSpec::new(
                        "short",
                        short,
                        SizeDist::PowerOfTwo { min: 16, max: 128 },
                        LifetimeDist::Exponential { mean: short_mean },
                    ),
                ],
                phase_period: None,
                seed,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn generated_traces_compile_and_round_trip(spec in arb_spec()) {
        let trace = spec.generate().expect("valid spec");
        let compiled = trace.compile().expect("well-formed");
        prop_assert!(compiled.births_strictly_increasing());
        let decoded = format::decode(&format::encode(&trace)).expect("decodes");
        prop_assert_eq!(decoded, trace);
    }

    #[test]
    fn simulation_conserves_memory_under_every_policy(spec in arb_spec()) {
        let trace = spec.generate().expect("valid spec").compile().expect("well-formed");
        let sim = SimConfig {
            trigger: dtb::sim::trigger::Trigger::Allocation(
                dtb::core::time::Bytes::new(100_000),
            ),
            ..SimConfig::paper()
        };
        for kind in PolicyKind::ALL {
            let run = run_kind(&trace, kind, &PolicyConfig::paper(), &sim);
            let mut reclaimed = 0u64;
            for rec in run.report.history.iter() {
                prop_assert!(rec.is_consistent());
                reclaimed += rec.reclaimed.as_u64();
            }
            // Conservation: allocated = reclaimed + in-use at the end.
            if let Some(last) = run.report.history.last() {
                let allocated_at_last = last.at.as_u64();
                prop_assert_eq!(
                    allocated_at_last,
                    reclaimed + last.surviving.as_u64(),
                    "{} leaks accounting", kind
                );
            }
        }
    }

    #[test]
    fn full_is_memory_optimal_among_collectors(spec in arb_spec()) {
        let trace = spec.generate().expect("valid spec").compile().expect("well-formed");
        let sim = SimConfig {
            trigger: dtb::sim::trigger::Trigger::Allocation(
                dtb::core::time::Bytes::new(100_000),
            ),
            ..SimConfig::paper()
        };
        let full = run_kind(&trace, PolicyKind::Full, &PolicyConfig::paper(), &sim)
            .report
            .mem_max;
        for kind in PolicyKind::ALL {
            let r = run_kind(&trace, kind, &PolicyConfig::paper(), &sim).report;
            prop_assert!(
                r.mem_max >= full,
                "{} used less memory than FULL ({:?} < {:?})",
                kind, r.mem_max, full
            );
        }
    }
}
