//! Writing your own boundary policy.
//!
//! Everything in this workspace — the classic collectors, the paper's
//! policies, the dual-constraint extension — is an implementation of one
//! trait: `TbPolicy`. This example implements a new policy from scratch
//! (a half-life heuristic: threaten the youngest half of memory by
//! volume) and runs it against the built-ins on the same workload.
//!
//! ```sh
//! cargo run --release --example custom_policy
//! ```

use dtb::core::error::PolicyError;
use dtb::core::policy::{PolicyKind, ScavengeContext, TbPolicy};
use dtb::core::time::VirtualTime;
use dtb::sim::exec::Evaluation;
use dtb::trace::programs::Program;

/// Threatens whatever was born after the *median surviving byte*: each
/// scavenge traces the youngest half of the surviving storage. A
/// reasonable-sounding heuristic — the point of the exercise is that the
/// framework makes it three lines to test whether it actually is one.
struct HalfLife;

impl TbPolicy for HalfLife {
    fn name(&self) -> &str {
        "HALFLIFE"
    }

    fn select_boundary(&mut self, ctx: &ScavengeContext<'_>) -> Result<VirtualTime, PolicyError> {
        let Some(last) = ctx.history.last() else {
            return Ok(VirtualTime::ZERO);
        };
        // Binary-search the age at which surviving storage splits in two,
        // using the same estimator the built-in policies consult.
        let target = ctx
            .survival
            .surviving_born_after(VirtualTime::ZERO)
            .as_u64()
            / 2;
        let (mut lo, mut hi) = (0u64, ctx.now.as_u64());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if ctx
                .survival
                .surviving_born_after(VirtualTime::from_bytes(mid))
                .as_u64()
                > target
            {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        Ok(VirtualTime::from_bytes(lo).min(last.at))
    }
}

fn main() {
    println!("ESPRESSO(1): a custom policy vs the built-ins\n");
    println!(
        "{:>9}  {:>9}  {:>9}  {:>12}  {:>9}",
        "policy", "mem mean", "mem max", "median pause", "overhead"
    );

    // A custom policy is one more row of the evaluation: the factory runs
    // inside the worker pool alongside the stock collectors.
    let matrix = Evaluation::new()
        .programs([Program::Espresso1])
        .policies([PolicyKind::Full, PolicyKind::Fixed1, PolicyKind::DtbFm])
        .custom_policy("HALFLIFE", |_| Box::new(HalfLife))
        .baselines(false)
        .run();
    let column = matrix.column(Program::Espresso1).expect("requested column");
    for r in column.reports() {
        println!(
            "{:>9}  {:>6.0} KB  {:>6.0} KB  {:>9.1} ms  {:>8.1}%",
            r.policy,
            r.mem_kb().0,
            r.mem_kb().1,
            r.pause_median_ms,
            r.overhead_pct,
        );
    }

    println!(
        "\nHALFLIFE traces half the heap every time: pauses grow with live data\n\
         (no constraint tracking) and memory sits between FULL and FIXED1 — a\n\
         tunable-less compromise. The DTB policies dominate it on whichever\n\
         axis the user actually cares about, which is the paper's point."
    );
}
