//! Policy explorer: the memory / pause-time / CPU trade-off surface.
//!
//! Sweeps the pause budget for `DTBFM` and the memory budget for `DTBMEM`
//! over one workload, printing the frontier each policy walks — the
//! paper's central claim made visible: **one intuitive knob, predictable
//! resource behaviour**. Sweep points and the final collector comparison
//! run in parallel over the simulator's worker pool.
//!
//! ```sh
//! cargo run --release --example policy_explorer [GHOST(1)|ESPRESSO(2)|...]
//! ```

use dtb::core::time::Bytes;
use dtb::sim::engine::SimConfig;
use dtb::sim::exec::Evaluation;
use dtb::sim::sweep::{sweep_memory_budget, sweep_pause_budget};
use dtb::trace::programs::Program;

fn main() {
    let which = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "ESPRESSO(1)".into());
    let program = Program::ALL
        .into_iter()
        .find(|p| p.label().eq_ignore_ascii_case(&which))
        .unwrap_or_else(|| {
            eprintln!("unknown program {which:?}; using ESPRESSO(1)");
            Program::Espresso1
        });
    let trace = program.compiled();
    let sim = SimConfig::paper();

    println!("== {} : DTBFM pause-budget sweep ==", program.label());
    println!(
        "{:>10}  {:>12}  {:>9}  {:>9}",
        "budget", "median pause", "mem mean", "overhead"
    );
    let pause_budgets_ms = [10.0, 25.0, 50.0, 100.0, 250.0, 500.0];
    let frontier = sweep_pause_budget(&trace, &pause_budgets_ms, &sim).expect("sweep completes");
    for (ms, point) in pause_budgets_ms.iter().zip(&frontier.points) {
        let r = &point.report;
        println!(
            "{:>7} ms  {:>9.1} ms  {:>6.0} KB  {:>8.1}%",
            ms,
            r.pause_median_ms,
            r.mem_kb().0,
            r.overhead_pct
        );
    }

    println!("\n== {} : DTBMEM memory-budget sweep ==", program.label());
    println!(
        "{:>10}  {:>9}  {:>9}  {:>12}",
        "budget", "mem max", "overhead", "median pause"
    );
    let mem_budgets_kb = [250u64, 500, 1000, 2000, 4000, 8000];
    let mem_budgets: Vec<Bytes> = mem_budgets_kb
        .iter()
        .map(|kb| Bytes::from_kb(*kb))
        .collect();
    let frontier = sweep_memory_budget(&trace, &mem_budgets, &sim).expect("sweep completes");
    for (kb, point) in mem_budgets_kb.iter().zip(&frontier.points) {
        let r = &point.report;
        println!(
            "{:>7} KB  {:>6.0} KB  {:>8.1}%  {:>9.1} ms",
            kb,
            r.mem_kb().1,
            r.overhead_pct,
            r.pause_median_ms
        );
    }

    println!(
        "\n== {} : all six collectors at the paper's settings ==",
        program.label()
    );
    println!(
        "{:>8}  {:>9}  {:>9}  {:>12}  {:>9}",
        "policy", "mem mean", "mem max", "median pause", "overhead"
    );
    let matrix = Evaluation::new()
        .programs([program])
        .baselines(false)
        .sim_config(sim)
        .run();
    for r in matrix.column(program).expect("requested column").reports() {
        println!(
            "{:>8}  {:>6.0} KB  {:>6.0} KB  {:>9.1} ms  {:>8.1}%",
            r.policy,
            r.mem_kb().0,
            r.mem_kb().1,
            r.pause_median_ms,
            r.overhead_pct
        );
    }
}
