//! Policy explorer: the memory / pause-time / CPU trade-off surface.
//!
//! Sweeps the pause budget for `DTBFM` and the memory budget for `DTBMEM`
//! over one workload, printing the frontier each policy walks — the
//! paper's central claim made visible: **one intuitive knob, predictable
//! resource behaviour**.
//!
//! ```sh
//! cargo run --release --example policy_explorer [GHOST(1)|ESPRESSO(2)|...]
//! ```

use dtb::core::cost::CostModel;
use dtb::core::policy::{PolicyConfig, PolicyKind};
use dtb::core::time::Bytes;
use dtb::sim::engine::SimConfig;
use dtb::sim::run::run_trace;
use dtb::trace::programs::Program;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "ESPRESSO(1)".into());
    let program = Program::ALL
        .into_iter()
        .find(|p| p.label().eq_ignore_ascii_case(&which))
        .unwrap_or_else(|| {
            eprintln!("unknown program {which:?}; using ESPRESSO(1)");
            Program::Espresso1
        });
    let trace = program
        .generate()
        .compile()
        .expect("preset traces are well-formed");
    let sim = SimConfig::paper();
    let cost = CostModel::paper();

    println!("== {} : DTBFM pause-budget sweep ==", program.label());
    println!(
        "{:>10}  {:>12}  {:>9}  {:>9}",
        "budget", "median pause", "mem mean", "overhead"
    );
    for ms in [10.0, 25.0, 50.0, 100.0, 250.0, 500.0] {
        let budgets =
            PolicyConfig::new(cost.trace_budget_for_pause_ms(ms), Bytes::from_kb(1 << 20));
        let r = run_trace(&trace, PolicyKind::DtbFm, &budgets, &sim).report;
        println!(
            "{:>7} ms  {:>9.1} ms  {:>6.0} KB  {:>8.1}%",
            ms, r.pause_median_ms, r.mem_kb().0, r.overhead_pct
        );
    }

    println!("\n== {} : DTBMEM memory-budget sweep ==", program.label());
    println!(
        "{:>10}  {:>9}  {:>9}  {:>12}",
        "budget", "mem max", "overhead", "median pause"
    );
    for kb in [250u64, 500, 1000, 2000, 4000, 8000] {
        let budgets = PolicyConfig::new(Bytes::new(50_000), Bytes::from_kb(kb));
        let r = run_trace(&trace, PolicyKind::DtbMem, &budgets, &sim).report;
        println!(
            "{:>7} KB  {:>6.0} KB  {:>8.1}%  {:>9.1} ms",
            kb,
            r.mem_kb().1,
            r.overhead_pct,
            r.pause_median_ms
        );
    }

    println!("\n== {} : all six collectors at the paper's settings ==", program.label());
    println!(
        "{:>8}  {:>9}  {:>9}  {:>12}  {:>9}",
        "policy", "mem mean", "mem max", "median pause", "overhead"
    );
    for kind in PolicyKind::ALL {
        let r = run_trace(&trace, kind, &PolicyConfig::paper(), &sim).report;
        println!(
            "{:>8}  {:>6.0} KB  {:>6.0} KB  {:>9.1} ms  {:>8.1}%",
            r.policy,
            r.mem_kb().0,
            r.mem_kb().1,
            r.pause_median_ms,
            r.overhead_pct
        );
    }
}
