//! A memory-budget scenario: a batch job on a machine with a hard memory
//! ceiling.
//!
//! The paper's motivation for `DTBMEM`: the compiler writer doesn't know
//! the user's machine. The user states one number — the memory the job
//! may use — and the collector spends memory *up to* that budget to
//! minimize CPU overhead, degrading gracefully to a full collector when
//! the budget is impossible.
//!
//! ```sh
//! cargo run --release --example memory_budget
//! ```

use dtb::core::policy::{PolicyConfig, PolicyKind};
use dtb::core::time::Bytes;
use dtb::sim::engine::{simulate, SimConfig};
use dtb::sim::sweep::sweep_memory_budget;
use dtb::trace::programs::Program;

fn main() {
    // ESPRESSO(2): 104 MB allocated, ~160 KB typically live — lots of
    // room for a memory/CPU trade.
    let trace = Program::Espresso2.compiled();
    let sim = SimConfig::paper();

    println!("ESPRESSO(2) under DTBMEM with a sweep of memory budgets\n");
    println!(
        "{:>10}  {:>9}  {:>9}  {:>10}  {:>9}",
        "budget", "mem mean", "mem max", "traced", "overhead"
    );
    let budgets_kb = [500u64, 1000, 2000, 3000, 6000, 12000];
    let budgets: Vec<Bytes> = budgets_kb.iter().map(|kb| Bytes::from_kb(*kb)).collect();
    let frontier = sweep_memory_budget(&trace, &budgets, &sim).expect("sweep completes");
    for (budget_kb, point) in budgets_kb.iter().zip(&frontier.points) {
        let (mem_mean, mem_max) = point.report.mem_kb();
        let within = mem_max <= *budget_kb as f64 * 1.01;
        println!(
            "{:>7} KB  {:>6.0} KB  {:>6.0} KB  {:>7.0} KB  {:>8.1}%  {}",
            budget_kb,
            mem_mean,
            mem_max,
            point.report.traced_kb(),
            point.report.overhead_pct,
            if within {
                "within budget"
            } else {
                "over (infeasible)"
            },
        );
    }

    let mut full_policy = PolicyKind::Full.build(&PolicyConfig::paper());
    let full = simulate(&trace, &mut full_policy, &sim).expect("baseline completes");
    let mut fixed1_policy = PolicyKind::Fixed1.build(&PolicyConfig::paper());
    let fixed1 = simulate(&trace, &mut fixed1_policy, &sim).expect("baseline completes");
    println!(
        "\nreference: FULL uses {:.0} KB at {:.1}% overhead; FIXED1 uses {:.0} KB \
         at {:.1}%.\nDTBMEM walks between them as the budget allows: more memory \
         budget, less CPU.",
        full.report.mem_kb().1,
        full.report.overhead_pct,
        fixed1.report.mem_kb().1,
        fixed1.report.overhead_pct,
    );
}
