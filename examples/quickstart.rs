//! Quickstart: run one collector over one workload and read the numbers
//! the paper's tables report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dtb::core::policy::{PolicyConfig, PolicyKind};
use dtb::sim::engine::SimConfig;
use dtb::sim::exec::Evaluation;
use dtb::trace::programs::Program;
use dtb::trace::stats::TraceStats;

fn main() {
    // The paper's configuration: scavenge every 1 MB of allocation,
    // 100 ms pause budget (50 000 bytes traced at 500 KB/s), 3000 KB
    // memory budget.
    let budgets = PolicyConfig::paper();
    let sim = SimConfig::paper();
    let program = Program::Cfrac;

    println!("workload: {}", program.label());
    let stats = TraceStats::compute(&program.generate());
    println!(
        "  {} objects, {:.1} MB allocated, live mean/max {:.0}/{:.0} KB\n",
        stats.object_count,
        stats.total_allocated.as_u64() as f64 / 1e6,
        stats.live_mean.as_kb(),
        stats.live_max.as_kb(),
    );

    let kinds = [
        PolicyKind::Full,
        PolicyKind::Fixed1,
        PolicyKind::DtbFm,
        PolicyKind::DtbMem,
    ];
    let matrix = Evaluation::new()
        .programs([program])
        .policies(kinds)
        .baselines(false)
        .policy_config(budgets)
        .sim_config(sim)
        .run();
    for kind in kinds {
        let report = matrix.get(program, kind).expect("requested cell");
        let (mem_mean, mem_max) = report.mem_kb();
        println!(
            "{:8}  mem {:>5.0}/{:>5.0} KB   median pause {:>6.1} ms   \
             traced {:>6.0} KB   overhead {:>4.1}%",
            report.policy,
            mem_mean,
            mem_max,
            report.pause_median_ms,
            report.traced_kb(),
            report.overhead_pct,
        );
    }

    println!(
        "\nFULL pays CPU for minimum memory; FIXED1 is cheap but leaks tenured \
         garbage;\nDTBFM holds pauses at the budget; DTBMEM spends memory up to \
         its budget to save CPU."
    );
}
