//! An interactive-application scenario: keep GC pauses under a budget.
//!
//! The paper's motivation for `DTBFM`: an interactive program (here, an
//! editor-like workload with bursts of allocation as documents open and
//! close) must not freeze noticeably. The user states one number — the
//! longest acceptable pause — and the collector holds its *median* pause
//! there, trading as little memory as possible for it.
//!
//! ```sh
//! cargo run --release --example interactive_editor
//! ```

use dtb::core::policy::{PolicyConfig, PolicyKind};
use dtb::sim::engine::{simulate, SimConfig};
use dtb::sim::sweep::sweep_pause_budget;
use dtb::trace::lifetime::{LifetimeDist, SizeDist};
use dtb::trace::synth::{ClassSpec, WorkloadSpec};

/// An editor: a resident buffer set (immortal ramp), per-document data
/// that dies when the document closes (phase-local), and undo/redo churn.
fn editor_workload() -> WorkloadSpec {
    WorkloadSpec {
        name: "EDITOR".into(),
        description: "interactive editor: documents open/close, undo churn".into(),
        exec_seconds: 120.0,
        total_alloc: 60_000_000,
        initial_permanent: 300_000,
        initial_object_size: 1024,
        classes: vec![
            ClassSpec::new(
                "resident-buffers",
                0.01,
                SizeDist::PowerOfTwo { min: 64, max: 4096 },
                LifetimeDist::Immortal,
            ),
            ClassSpec::new(
                "document-local",
                0.02,
                SizeDist::PowerOfTwo { min: 32, max: 1024 },
                LifetimeDist::PhaseLocal, // dies when the document closes
            ),
            ClassSpec::new(
                "undo-churn",
                0.97,
                SizeDist::PowerOfTwo { min: 16, max: 256 },
                LifetimeDist::Exponential { mean: 4_000.0 },
            ),
        ],
        phase_period: Some(4_000_000), // a "document session"
        seed: 2024,
    }
}

fn main() {
    let trace = editor_workload()
        .generate()
        .expect("valid spec")
        .compile()
        .expect("well-formed trace");
    let sim = SimConfig::paper();

    println!("Editor workload: 60 MB allocated over a 2-minute session\n");
    println!(
        "{:>10}  {:>12}  {:>10}  {:>10}  {:>9}",
        "budget", "median pause", "p90 pause", "mem mean", "overhead"
    );
    // The sweep leaves memory effectively unconstrained: only the pause
    // knob moves. Points run in parallel.
    let pause_budgets_ms = [25.0, 50.0, 100.0, 200.0];
    let frontier = sweep_pause_budget(&trace, &pause_budgets_ms, &sim).expect("sweep completes");
    for (pause_budget_ms, point) in pause_budgets_ms.iter().zip(&frontier.points) {
        println!(
            "{:>7} ms  {:>9.1} ms  {:>7.1} ms  {:>7.0} KB  {:>8.1}%",
            pause_budget_ms,
            point.report.pause_median_ms,
            point.report.pause_p90_ms,
            point.report.mem_kb().0,
            point.report.overhead_pct,
        );
    }

    // The unconstrained baseline for contrast.
    let mut full_policy = PolicyKind::Full.build(&PolicyConfig::paper());
    let full = simulate(&trace, &mut full_policy, &sim).expect("baseline completes");
    println!(
        "\nFULL baseline: median pause {:.0} ms — a visible freeze; DTBFM holds \
         the budget\nand its memory cost shrinks as the budget loosens.",
        full.report.pause_median_ms
    );
}
