//! Figure 1 on the real heap: tenured garbage, nepotism, and untenuring.
//!
//! Reconstructs the paper's Figure 1 scenario with actual garbage-collected
//! objects: a generational (FIXED1) collector strands dead objects in the
//! immune space (objects I, J — and F survives by *nepotism*, pointed at
//! by tenured garbage), then a dynamic threatening boundary moved back in
//! time reclaims all of them.
//!
//! ```sh
//! cargo run --example figure1_untenuring
//! ```

use dtb::heap::{collect_now, configure, heap_stats, Gc, GcCell, HeapConfig, Trace, Tracer};

/// A Figure 1 object: a label ('A'..'K') and one mutable outgoing pointer.
struct Obj {
    label: char,
    edge: GcCell<Option<Gc<Obj>>>,
}

// SAFETY: `edge` is the only field containing Gc edges.
unsafe impl Trace for Obj {
    fn trace(&self, t: &mut Tracer) {
        self.edge.trace(t);
    }
    fn root(&self) {
        self.edge.root();
    }
    fn unroot(&self) {
        self.edge.unroot();
    }
}

fn obj(label: char) -> Gc<Obj> {
    Gc::new(Obj {
        label,
        edge: GcCell::new(None),
    })
}

fn mem() -> u64 {
    heap_stats().mem_in_use.as_u64()
}

fn main() {
    // Classic generational behaviour: boundary at the previous scavenge.
    configure(HeapConfig::manual_fixed1());

    // Old generation: I and J (will become garbage), K (stays live).
    let i = obj('I');
    let j = obj('J');
    let k = obj('K');
    println!("allocated I, J, K (old generation), mem = {} bytes", mem());
    collect_now();
    collect_now(); // two scavenges: I, J, K are now immune under FIXED1

    // Young generation: F, reachable only from the old object J.
    let f = obj('F');
    j.edge.set(&j, Some(f.clone()));
    println!("allocated F (young), J -> F via write barrier");

    // The mutator drops everything except K: I, J, F are all garbage.
    drop(i);
    drop(j);
    drop(f);
    let out = collect_now();
    println!(
        "\nFIXED1 scavenge: boundary = {}, reclaimed = {} bytes",
        out.boundary, out.reclaimed
    );
    println!(
        "I and J are dead but immune: tenured garbage. F is dead and \
         threatened,\nbut tenured garbage J points at it — nepotism keeps F \
         alive. mem = {} bytes",
        mem()
    );

    // The dynamic threatening boundary move: select a boundary older than
    // I, J (here: a full collection, TB = 0) — they are untenured.
    configure(HeapConfig::manual_full());
    let out = collect_now();
    println!(
        "\nDTB scavenge with boundary moved back to {}: reclaimed = {} bytes",
        out.boundary, out.reclaimed
    );
    println!(
        "I, J, F all reclaimed (untenured); K survives, mem = {} bytes",
        mem()
    );
    assert_eq!(k.label, 'K');
    assert!(out.reclaimed.as_u64() > 0);
}
