//! Workload analysis: survival curves and demographics of the six presets.
//!
//! Characterizes each workload the way a collector designer would before
//! picking constraints: what fraction of allocation dies young (the
//! generational hypothesis), how much is medium-lived (the tenured-garbage
//! population the DTB policies exist to manage), and how much is immortal.
//!
//! ```sh
//! cargo run --release --example workload_analysis
//! ```

use dtb::trace::analysis::{Demographics, SurvivalCurve};
use dtb::trace::programs::Program;

fn main() {
    println!(
        "{:12}  {:>8}  {:>8}  {:>8}   survival at 1 MB / 4 MB",
        "program", "young%", "medium%", "immortal%"
    );
    println!("{}", "-".repeat(78));
    for p in Program::ALL {
        let trace = p.generate().compile().expect("well-formed");
        let demo = Demographics::compute(&trace);
        let curve = SurvivalCurve::at_paper_checkpoints(&trace);
        let total = demo.total.as_u64() as f64;
        println!(
            "{:12}  {:>7.1}%  {:>7.1}%  {:>8.1}%   {:>5.1}% / {:>4.1}%",
            p.label(),
            demo.young_death_fraction() * 100.0,
            demo.medium_lived.as_u64() as f64 / total * 100.0,
            demo.immortal.as_u64() as f64 / total * 100.0,
            curve.at(1_000_000).unwrap_or(0.0) * 100.0,
            curve.at(4_000_000).unwrap_or(0.0) * 100.0,
        );
    }

    println!("\nfull survival curve, GHOST(1):");
    let trace = Program::Ghost1.generate().compile().expect("well-formed");
    let curve = SurvivalCurve::at_paper_checkpoints(&trace);
    for (age, s) in curve.ages.iter().zip(&curve.survival) {
        let bar = "#".repeat((s * 60.0).round() as usize);
        println!("  age {:>9} B  {:>6.2}%  {}", age, s * 100.0, bar);
    }
    println!(
        "\nReading: the steep drop before 1 MB is what makes generational\n\
         collection work at all; the mass between 1 MB and 4 MB is what the\n\
         dynamic threatening boundary manages better than fixed promotion."
    );
}
