//! **dtb** — Garbage Collection Using a Dynamic Threatening Boundary.
//!
//! A Rust reproduction of Barrett & Zorn's PLDI 1995 paper (technical
//! report CU-CS-659-93). This facade crate re-exports the workspace:
//!
//! * [`core`](dtb_core) — the boundary-policy framework: virtual time,
//!   the cost model, scavenge history, and the six collector policies of
//!   Table 1 (`FULL`, `FIXED1`, `FIXED4`, `FEEDMED`, `DTBFM`, `DTBMEM`).
//! * [`trace`](dtb_trace) — allocation traces: the event model, synthetic
//!   workload generators calibrated to the paper's four programs, and
//!   trace serialization.
//! * [`sim`](dtb_sim) — the trace-driven simulator reproducing the
//!   paper's methodology and its Tables 2–4 metrics.
//! * [`heap`](dtb_heap) — a real single-threaded mark–sweep collector
//!   with per-object birth times, a write barrier, a single remembered
//!   set, and dynamic-boundary scavenges.
//!
//! # Which crate do I want?
//!
//! *Evaluating GC policies on workloads* → [`dtb_sim`] +
//! [`dtb_trace`]. *Embedding a garbage-collected heap with a pause or
//! memory budget* → [`dtb_heap`]. *Implementing a new boundary policy* →
//! implement [`dtb_core::policy::TbPolicy`] and plug it into either.
//!
//! # Example
//!
//! ```
//! use dtb::core::policy::PolicyKind;
//! use dtb::sim::exec::Evaluation;
//! use dtb::trace::programs::Program;
//!
//! let matrix = Evaluation::new()
//!     .programs([Program::Cfrac])
//!     .policies([PolicyKind::DtbMem])
//!     .run();
//! let report = matrix.get(Program::Cfrac, PolicyKind::DtbMem).unwrap();
//! // The memory-constrained collector stayed within its 3000 KB budget.
//! assert!(report.mem_max.as_u64() <= 3000 * 1024);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dtb_core as core;
pub use dtb_heap as heap;
pub use dtb_sim as sim;
pub use dtb_trace as trace;

pub use dtb_core::policy::{PolicyConfig, PolicyKind, Row};
pub use dtb_sim::{Evaluation, Matrix, SimConfig, SimReport, TraceCache};
pub use dtb_trace::programs::Program;
