//! Vendored offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`] (cheaply cloneable, sliceable, shared buffer),
//! [`BytesMut`] (growable builder), and the [`Buf`]/[`BufMut`] cursor
//! traits — restricted to the methods this workspace calls. Multi-byte
//! values use big-endian order, matching the real crate.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply cloneable byte buffer.
///
/// Consuming reads through [`Buf`] advance the view without copying the
/// underlying storage.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::copy_from_slice(&[])
    }

    /// Copies `data` into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: Arc::from(data),
            start: 0,
            end: data.len(),
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Number of readable bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end,
        }
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

/// Consuming reads from a byte cursor. Reads advance past the consumed
/// prefix and panic if fewer bytes remain than requested, like the real
/// crate.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8;

    /// Reads a big-endian `f64`.
    fn get_f64(&mut self) -> f64;

    /// Reads `len` bytes into a new [`Bytes`] (shares storage when possible).
    fn copy_to_bytes(&mut self, len: usize) -> Bytes;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        assert!(self.has_remaining(), "get_u8 past end of buffer");
        let b = self.data[self.start];
        self.start += 1;
        b
    }

    fn get_f64(&mut self) -> f64 {
        assert!(self.remaining() >= 8, "get_f64 past end of buffer");
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.data[self.start..self.start + 8]);
        self.start += 8;
        f64::from_be_bytes(raw)
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(self.remaining() >= len, "copy_to_bytes past end of buffer");
        let out = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + len,
        };
        self.start += len;
        out
    }
}

/// Appending writes to a growable byte builder. Multi-byte values are
/// big-endian.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);

    /// Appends a big-endian `f64`.
    fn put_f64(&mut self, v: f64);

    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_f64(&mut self, v: f64) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trips() {
        let mut w = BytesMut::with_capacity(16);
        w.put_u8(0xAB);
        w.put_f64(1.5);
        w.put_slice(b"xyz");
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 1 + 8 + 3);
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_f64(), 1.5);
        assert_eq!(&r.copy_to_bytes(3)[..], b"xyz");
        assert!(!r.has_remaining());
    }

    #[test]
    fn f64_is_big_endian() {
        let mut w = BytesMut::new();
        w.put_f64(2.0);
        assert_eq!(&w[..], &2.0f64.to_be_bytes());
    }

    #[test]
    fn copy_to_bytes_shares_storage_and_advances() {
        let mut b = Bytes::copy_from_slice(b"hello world");
        let head = b.copy_to_bytes(5);
        assert_eq!(&head[..], b"hello");
        assert_eq!(b.remaining(), 6);
        assert_eq!(&b[..], b" world");
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn reading_past_end_panics() {
        let mut b = Bytes::copy_from_slice(&[1]);
        b.get_u8();
        b.get_u8();
    }
}
