//! Vendored offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! vendored value-model `serde` without `syn`/`quote`: the item's token
//! stream is walked by hand and the impl is emitted as source text.
//!
//! Supported shapes — exactly what this workspace uses:
//!
//! * named-field structs;
//! * newtype (one-field tuple) structs;
//! * enums whose variants are unit, named-field, or one-field tuple.
//!
//! Generic items and `#[serde(...)]` attributes are **not** supported and
//! produce a compile error naming this crate.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of the deriving item.
enum Shape {
    /// `struct X { a: T, b: U }`
    Struct { name: String, fields: Vec<String> },
    /// `struct X(T);`
    Newtype { name: String },
    /// `enum X { ... }`
    Enum {
        name: String,
        variants: Vec<(String, VariantShape)>,
    },
}

enum VariantShape {
    Unit,
    Named(Vec<String>),
    Tuple1,
}

/// Emits a `compile_error!` with a message.
fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

fn is_ident(t: &TokenTree, s: &str) -> bool {
    matches!(t, TokenTree::Ident(i) if i.to_string() == s)
}

/// Advances past attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        if i + 1 < tokens.len()
            && is_punct(&tokens[i], '#')
            && matches!(&tokens[i + 1], TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket)
        {
            i += 2;
        } else if i < tokens.len() && is_ident(&tokens[i], "pub") {
            i += 1;
            if i < tokens.len()
                && matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        } else {
            return i;
        }
    }
}

/// Parses the named fields of a brace group: `a: T, b: U,`.
fn parse_named_fields(group: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let TokenTree::Ident(name) = &tokens[i] else {
            return Err(format!("expected field name, found `{}`", tokens[i]));
        };
        fields.push(name.to_string());
        i += 1;
        if i >= tokens.len() || !is_punct(&tokens[i], ':') {
            return Err(format!("expected `:` after field `{name}`"));
        }
        i += 1;
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            if is_punct(&tokens[i], '<') {
                depth += 1;
            } else if is_punct(&tokens[i], '>') {
                depth -= 1;
            } else if is_punct(&tokens[i], ',') && depth == 0 {
                i += 1;
                break;
            }
            i += 1;
        }
    }
    Ok(fields)
}

/// Counts top-level comma-separated elements of a paren group.
fn tuple_arity(group: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut arity = 1;
    let mut depth = 0i32;
    let mut trailing_comma = false;
    for t in &tokens {
        if is_punct(t, '<') {
            depth += 1;
        } else if is_punct(t, '>') {
            depth -= 1;
        } else if is_punct(t, ',') && depth == 0 {
            arity += 1;
            trailing_comma = true;
            continue;
        }
        trailing_comma = false;
    }
    if trailing_comma {
        arity -= 1;
    }
    arity
}

fn parse_variants(group: TokenStream) -> Result<Vec<(String, VariantShape)>, String> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let TokenTree::Ident(name) = &tokens[i] else {
            return Err(format!("expected variant name, found `{}`", tokens[i]));
        };
        let name = name.to_string();
        i += 1;
        let shape = if i < tokens.len() {
            match &tokens[i] {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                    i += 1;
                    VariantShape::Named(parse_named_fields(g.stream())?)
                }
                TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                    i += 1;
                    if tuple_arity(g.stream()) != 1 {
                        return Err(format!(
                            "variant `{name}`: only one-field tuple variants are supported"
                        ));
                    }
                    VariantShape::Tuple1
                }
                _ => VariantShape::Unit,
            }
        } else {
            VariantShape::Unit
        };
        if i < tokens.len() && is_punct(&tokens[i], '=') {
            return Err(format!("variant `{name}`: discriminants are unsupported"));
        }
        variants.push((name, shape));
        if i < tokens.len() {
            if !is_punct(&tokens[i], ',') {
                return Err(format!(
                    "expected `,` after a variant, found `{}`",
                    tokens[i]
                ));
            }
            i += 1;
        }
    }
    Ok(variants)
}

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected a type name, found {other:?}")),
    };
    i += 1;
    if tokens.get(i).is_some_and(|t| is_punct(t, '<')) {
        return Err(format!("`{name}`: generic types are unsupported"));
    }
    match (keyword.as_str(), tokens.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Ok(Shape::Struct {
                name,
                fields: parse_named_fields(g.stream())?,
            })
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            if tuple_arity(g.stream()) != 1 {
                return Err(format!(
                    "`{name}`: only newtype tuple structs are supported"
                ));
            }
            Ok(Shape::Newtype { name })
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Ok(Shape::Enum {
                name,
                variants: parse_variants(g.stream())?,
            })
        }
        _ => Err(format!("`{name}`: unsupported item shape")),
    }
}

fn named_fields_to_value(fields: &[String], access: impl Fn(&str) -> String) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from({f:?}), ::serde::Serialize::to_value({})),",
                access(f)
            )
        })
        .collect();
    format!("::serde::Value::Map(::std::vec![{}])", entries.join(""))
}

fn named_fields_from_value(ty: &str, fields: &[String], src: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: match {src}.field({f:?}) {{ \
                     ::std::option::Option::Some(_fv) => ::serde::Deserialize::from_value(_fv)?, \
                     ::std::option::Option::None => \
                         ::serde::Deserialize::from_value(&::serde::Value::Null).map_err(|_| \
                             ::serde::de::Error::msg(::std::format!(\
                                 \"missing field `{f}` in {ty}\")))?, \
                 }},"
            )
        })
        .collect();
    inits.join("")
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return error(&format!("vendored serde_derive(Serialize): {e}")),
    };
    let body = match &shape {
        Shape::Struct { fields, .. } => named_fields_to_value(fields, |f| format!("&self.{f}")),
        Shape::Newtype { .. } => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, vs)| match vs {
                    VariantShape::Unit => format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from({v:?})),"
                    ),
                    VariantShape::Named(fields) => {
                        let binders = fields.join(", ");
                        let inner = named_fields_to_value(fields, |f| f.to_string());
                        format!(
                            "{name}::{v} {{ {binders} }} => ::serde::Value::Map(::std::vec![\
                                 (::std::string::String::from({v:?}), {inner})]),"
                        )
                    }
                    VariantShape::Tuple1 => format!(
                        "{name}::{v}(_f0) => ::serde::Value::Map(::std::vec![\
                             (::std::string::String::from({v:?}), \
                              ::serde::Serialize::to_value(_f0))]),"
                    ),
                })
                .collect();
            format!("match self {{ {} }}", arms.join(""))
        }
    };
    let name = match &shape {
        Shape::Struct { name, .. } | Shape::Newtype { name } | Shape::Enum { name, .. } => name,
    };
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
             fn to_value(&self) -> ::serde::Value {{ {body} }} \
         }}"
    )
    .parse()
    .unwrap()
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return error(&format!("vendored serde_derive(Deserialize): {e}")),
    };
    let (name, body) = match &shape {
        Shape::Struct { name, fields } => {
            let inits = named_fields_from_value(name, fields, "v");
            (
                name,
                format!("::std::result::Result::Ok({name} {{ {inits} }})"),
            )
        }
        Shape::Newtype { name } => (
            name,
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"),
        ),
        Shape::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, vs)| matches!(vs, VariantShape::Unit))
                .map(|(v, _)| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, vs)| match vs {
                    VariantShape::Unit => None,
                    VariantShape::Named(fields) => {
                        let inits = named_fields_from_value(name, fields, "_inner");
                        Some(format!(
                            "{v:?} => ::std::result::Result::Ok({name}::{v} {{ {inits} }}),"
                        ))
                    }
                    VariantShape::Tuple1 => Some(format!(
                        "{v:?} => ::std::result::Result::Ok(\
                             {name}::{v}(::serde::Deserialize::from_value(_inner)?)),"
                    )),
                })
                .collect();
            let body = format!(
                "match v {{ \
                     ::serde::Value::Str(_s) => match _s.as_str() {{ \
                         {} \
                         _other => ::std::result::Result::Err(::serde::de::Error::msg(\
                             ::std::format!(\"unknown {name} variant `{{_other}}`\"))), \
                     }}, \
                     ::serde::Value::Map(_entries) if _entries.len() == 1 => {{ \
                         let (_k, _inner) = &_entries[0]; \
                         match _k.as_str() {{ \
                             {} \
                             _other => ::std::result::Result::Err(::serde::de::Error::msg(\
                                 ::std::format!(\"unknown {name} variant `{{_other}}`\"))), \
                         }} \
                     }}, \
                     _other => ::std::result::Result::Err(::serde::de::Error::msg(\
                         ::std::format!(\"expected {name}, got {{}}\", _other.kind()))), \
                 }}",
                unit_arms.join(""),
                data_arms.join(""),
            );
            (name, body)
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
             fn from_value(v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::de::Error> {{ {body} }} \
         }}"
    )
    .parse()
    .unwrap()
}
