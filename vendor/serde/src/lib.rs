//! Vendored offline stand-in for the `serde` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the small slice of serde it actually needs: `Serialize`/`Deserialize`
//! traits routed through a self-describing [`Value`] model, plus derive
//! macros (re-exported from the companion `serde_derive` stand-in).
//!
//! This is intentionally **not** the real serde data model: there are no
//! serializer/deserializer visitors, just conversion to and from [`Value`].
//! `serde_json` (also vendored) renders a [`Value`] as JSON text and parses
//! it back, which is all the workspace requires.

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (a JSON-like tree).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Absent / null.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Key/value map in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Map field lookup.
    pub fn field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A short label for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Types that can render themselves as a [`Value`].
pub trait Serialize {
    /// Converts `self` into the value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, de::Error>;
}

/// Deserialization error support.
pub mod de {
    /// Why a [`super::Value`] could not be deserialized.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct Error(pub String);

    impl Error {
        /// An error with a formatted message.
        pub fn msg(m: impl Into<String>) -> Error {
            Error(m.into())
        }
    }

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "deserialize error: {}", self.0)
        }
    }

    impl std::error::Error for Error {}
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| de::Error::msg(format!("{n} out of range"))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| de::Error::msg(format!("{n} out of range"))),
                    other => Err(de::Error::msg(format!(
                        "expected integer, got {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                match v {
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| de::Error::msg(format!("{n} out of range"))),
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| de::Error::msg(format!("{n} out of range"))),
                    other => Err(de::Error::msg(format!(
                        "expected integer, got {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::F64(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                match v {
                    Value::F64(n) => Ok(*n as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    other => Err(de::Error::msg(format!(
                        "expected number, got {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(de::Error::msg(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(de::Error::msg(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(de::Error::msg(format!(
                "expected sequence, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_serde_tuple {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                match v {
                    Value::Seq(items) => {
                        let mut it = items.iter();
                        let out = ($({
                            let slot = it.next().ok_or_else(|| {
                                de::Error::msg("tuple too short")
                            })?;
                            $t::from_value(slot)?
                        },)+);
                        Ok(out)
                    }
                    other => Err(de::Error::msg(format!(
                        "expected sequence, got {}", other.kind()
                    ))),
                }
            }
        }
    )+};
}
impl_serde_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()), Ok(v));
        let o: Option<u64> = None;
        assert_eq!(Option::<u64>::from_value(&o.to_value()), Ok(None));
        let t = (1u64, 2.5f64);
        assert_eq!(<(u64, f64)>::from_value(&t.to_value()), Ok(t));
    }

    #[test]
    fn type_mismatch_reports_kind() {
        let err = u64::from_value(&Value::Str("x".into())).unwrap_err();
        assert!(err.0.contains("string"));
    }

    #[test]
    fn map_field_lookup() {
        let m = Value::Map(vec![("a".into(), Value::U64(1))]);
        assert_eq!(m.field("a"), Some(&Value::U64(1)));
        assert_eq!(m.field("b"), None);
    }
}
