//! Vendored offline stand-in for the `crossbeam` crate.
//!
//! Supplies `crossbeam::thread::scope`, the only surface this workspace
//! uses (the parallel evaluation executor in `dtb-sim::exec`). The shim
//! layers over `std::thread::scope`, which provides the same structured
//! guarantee (all spawned threads join before the scope returns).
//!
//! One documented divergence from the real crate: `Scope::spawn` takes a
//! plain `FnOnce() -> T` instead of `FnOnce(&Scope) -> T`, since nothing
//! here spawns from inside a spawned thread.

pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A scope handle passed to the closure given to [`scope`].
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle to a thread spawned inside a [`Scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread guaranteed to join before the scope exits.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce() -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(f),
            }
        }
    }

    /// Runs `f` with a [`Scope`]; every spawned thread joins before this
    /// returns. Mirrors crossbeam by returning `Err` with the first panic
    /// payload instead of propagating the panic.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn threads_join_before_scope_returns() {
        let counter = AtomicUsize::new(0);
        let total = crate::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|i| {
                    let counter = &counter;
                    s.spawn(move || {
                        counter.fetch_add(1, Ordering::SeqCst);
                        i
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum::<usize>()
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 8);
        assert_eq!(total, (0..8).sum());
    }

    #[test]
    fn panics_surface_as_err() {
        let out = crate::thread::scope(|s| {
            let h = s.spawn(|| panic!("boom"));
            h.join()
        })
        .unwrap();
        assert!(out.is_err());
    }
}
