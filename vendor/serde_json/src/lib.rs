//! Vendored offline stand-in for `serde_json`.
//!
//! Renders the vendored [`serde::Value`] model as JSON text and parses
//! JSON text back into it. Covers `to_string`, `to_string_pretty`, and
//! `from_str` — the surface this workspace uses.

use serde::{de, Deserialize, Serialize, Value};

/// Result alias matching the upstream crate's shape.
pub type Result<T> = std::result::Result<T, Error>;

/// A JSON formatting or parsing error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<de::Error> for Error {
    fn from(e: de::Error) -> Error {
        Error(e.0)
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        // JSON has no Inf/NaN; emit null like serde_json does.
        "null".to_string()
    }
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    let (nl, pad, pad_in) = match indent {
        Some(w) => ("\n", " ".repeat(w * level), " ".repeat(w * (level + 1))),
        None => ("", String::new(), String::new()),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => out.push_str(&fmt_f64(*n)),
        Value::Str(s) => escape_into(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(item, out, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                escape_into(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Serializes a value as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value as two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses a JSON document into a deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_lit("null") => Ok(Value::Null),
            Some(b't') if self.eat_lit("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_lit("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    entries.push((key, self.parse_value()?));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error("bad escape".into())),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8".into()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error(format!("bad number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error(format!("bad number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error(format!("bad number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = Value::Map(vec![
            ("a".into(), Value::U64(1)),
            ("b".into(), Value::Seq(vec![Value::Bool(true), Value::Null])),
            ("c".into(), Value::F64(1.5)),
        ]);
        let mut out = String::new();
        write_value(&v, &mut out, None, 0);
        assert_eq!(out, r#"{"a":1,"b":[true,null],"c":1.5}"#);
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(fmt_f64(2.0), "2.0");
        assert_eq!(fmt_f64(f64::NAN), "null");
    }

    #[test]
    fn parse_round_trips() {
        let text = r#"{"name":"GHOST(1)","n":42,"xs":[1,-2,3.5],"flag":false}"#;
        let v: Value = {
            let mut p = Parser {
                bytes: text.as_bytes(),
                pos: 0,
            };
            p.parse_value().unwrap()
        };
        let mut out = String::new();
        write_value(&v, &mut out, None, 0);
        assert_eq!(out, text);
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Value::Str("a\"b\\c\nd".into());
        let mut out = String::new();
        write_value(&v, &mut out, None, 0);
        let mut p = Parser {
            bytes: out.as_bytes(),
            pos: 0,
        };
        assert_eq!(p.parse_value().unwrap(), v);
    }

    #[test]
    fn typed_round_trip_via_api() {
        let xs = vec![1u64, 2, 3];
        let s = to_string(&xs).unwrap();
        assert_eq!(s, "[1,2,3]");
        let back: Vec<u64> = from_str(&s).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn pretty_indents() {
        let v = vec![1u64];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1\n]");
    }
}
