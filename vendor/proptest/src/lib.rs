//! Vendored offline stand-in for the `proptest` crate.
//!
//! Deterministic random property testing with the macro surface this
//! workspace uses: `proptest!`, `prop_assert!`, `prop_assert_eq!`,
//! `prop_assume!`, [`Strategy`] with `prop_map`, `prop::collection::vec`,
//! `prop::option::of`, and range/tuple strategies. Unlike the real crate
//! there is no shrinking: a failing case reports its case number and
//! seed so it can be replayed by rerunning the test.

use std::hash::{Hash, Hasher};
use std::ops::{Range, RangeInclusive};

/// Number of accepted cases each property runs (`PROPTEST_CASES`
/// overrides).
fn cases_per_property() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(64)
}

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Accepted cases to run for each property in the block.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config overriding only the case count.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: cases_per_property(),
        }
    }
}

/// Why a single test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
    /// A `prop_assume!` filtered this case out; it is retried, not failed.
    Reject(String),
}

/// Deterministic generator driving strategy sampling (xoshiro256**).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    fn from_seed(seed: u64) -> TestRng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform in `[lo, hi]`; a wrapped span of zero means any value.
    fn u64_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        let span = hi.wrapping_sub(lo).wrapping_add(1);
        if span == 0 {
            return self.next_u64();
        }
        let wide = (self.next_u64() as u128) * (span as u128);
        lo + (wide >> 64) as u64
    }

    /// Uniform in `[0, 1)` with 53-bit precision.
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.sample(rng))
    }
}

macro_rules! impl_uint_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.u64_inclusive(self.start as u64, self.end as u64 - 1) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                rng.u64_inclusive(lo as u64, hi as u64) as $t
            }
        }
    )*};
}
impl_uint_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let lo = self.start as i64 as u64;
                let hi = (self.end as i64 as u64).wrapping_sub(1);
                rng.u64_inclusive(0, hi.wrapping_sub(lo)).wrapping_add(lo) as i64 as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let lo = lo as i64 as u64;
                let hi = hi as i64 as u64;
                rng.u64_inclusive(0, hi.wrapping_sub(lo)).wrapping_add(lo) as i64 as $t
            }
        }
    )*};
}
impl_int_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($t:ident),+))+) => {$(
        #[allow(non_snake_case)]
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($t,)+) = self;
                ($($t.sample(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Length bounds for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_incl: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi_incl: n }
    }
}
impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_incl: r.end - 1,
        }
    }
}
impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_incl: *r.end(),
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// `Vec`s whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.u64_inclusive(self.size.lo as u64, self.size.hi_incl as u64) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Option strategies (`prop::option::of`).
pub mod option {
    use super::{Strategy, TestRng};

    /// `Some` values from `inner` three times out of four, else `None`
    /// (matching the real crate's default weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.u64_inclusive(0, 3) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

/// Values with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// The strategy `any` returns.
    type Strategy: Strategy<Value = Self>;

    /// The full-domain strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = RangeInclusive<$t>;
            fn arbitrary() -> Self::Strategy {
                <$t>::MIN..=<$t>::MAX
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy behind `any::<bool>()`.
pub struct BoolStrategy;

impl Strategy for BoolStrategy {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = BoolStrategy;
    fn arbitrary() -> BoolStrategy {
        BoolStrategy
    }
}

/// Drives one property: repeatedly samples inputs and evaluates `case`
/// until the case budget is met. Rejected cases are retried with fresh
/// inputs; a failing case panics with its replay coordinates.
pub fn run_property<F>(name: &str, case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    run_property_cases(cases_per_property(), name, case)
}

/// [`run_property`] with an explicit case budget (used by
/// `#![proptest_config(...)]`).
pub fn run_property_cases<F>(target: u32, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let max_attempts = target.saturating_mul(16);
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    name.hash(&mut hasher);
    let base_seed = hasher.finish();

    let mut accepted = 0u32;
    for attempt in 0..max_attempts {
        if accepted >= target {
            return;
        }
        let seed = base_seed.wrapping_add(attempt as u64);
        let mut rng = TestRng::from_seed(seed);
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "property {name} failed at case {accepted} \
                     (attempt {attempt}, seed {seed:#x}): {msg}"
                );
            }
        }
    }
    assert!(
        accepted >= target / 2,
        "property {name}: too many rejected cases ({accepted}/{target} accepted \
         after {max_attempts} attempts)"
    );
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` sampling its arguments per case.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let __strategies = ($($strat,)+);
            $crate::run_property_cases(
                $crate::ProptestConfig::from($cfg).cases,
                concat!(module_path!(), "::", stringify!($name)),
                |__rng| {
                    let ($($arg,)+) = $crate::Strategy::sample(&__strategies, __rng);
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    __outcome
                },
            );
        }
    )*};
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: `{:?}` != `{:?}`",
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "{}: `{:?}` != `{:?}`",
                ::std::format!($($fmt)+),
                __l,
                __r
            )));
        }
    }};
}

/// Discards the current case (retried with fresh inputs) unless `cond`
/// holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn sampling_is_deterministic_per_name() {
        let strat = prop::collection::vec(0u64..=100, 1..10);
        let mut a = crate::TestRng::from_seed(9);
        let mut b = crate::TestRng::from_seed(9);
        assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 10u32..20, y in -5i64..=5, f in 0.0f64..1.0) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_size_range(
            xs in prop::collection::vec(0u64..=10, 2..6),
        ) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert!(xs.iter().all(|&x| x <= 10));
        }

        #[test]
        fn prop_map_and_tuples_compose(
            pair in (1u64..=100, 1u32..=7).prop_map(|(a, b)| (a * 2, b)),
        ) {
            prop_assert_eq!(pair.0 % 2, 0);
            prop_assert!(pair.1 >= 1 && pair.1 <= 7);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u64..=9) {
            prop_assume!(n != 4);
            prop_assert!(n != 4, "assume should have filtered n == 4");
        }

        #[test]
        fn option_of_produces_both_variants(
            opts in prop::collection::vec(prop::option::of(0u64..=1), 64..=64),
        ) {
            prop_assert!(opts.iter().any(Option::is_some));
            prop_assert!(opts.iter().any(Option::is_none));
        }
    }
}
