//! Vendored offline stand-in for the `rand` crate.
//!
//! Deterministic pseudo-randomness for synthetic workload generation and
//! randomized tests: [`RngCore`]/[`Rng`]/[`SeedableRng`] plus
//! [`rngs::StdRng`] (xoshiro256** seeded via SplitMix64). The streams
//! differ from the real crate's ChaCha-based `StdRng`, but every consumer
//! in this workspace treats seeds as opaque workload identities, so only
//! determinism matters.

/// Low-level source of random bits.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let raw = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&raw[..chunk.len()]);
        }
    }
}

/// Rngs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (`a..b` or `a..=b`).
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A 53-bit-precision uniform sample in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one sample using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[lo, hi]` widened to u64, span-safe for the full
/// domain (a wrapped span of zero means "any 64-bit value").
fn sample_u64_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: u64, hi: u64) -> u64 {
    let span = hi.wrapping_sub(lo).wrapping_add(1);
    if span == 0 {
        return rng.next_u64();
    }
    // Multiply-shift bounded sampling: deterministic, negligible bias.
    let wide = (rng.next_u64() as u128) * (span as u128);
    lo + (wide >> 64) as u64
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                sample_u64_inclusive(rng, self.start as u64, self.end as u64 - 1) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                sample_u64_inclusive(rng, lo as u64, hi as u64) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let lo = self.start as i64 as u64;
                let hi = (self.end as i64 as u64).wrapping_sub(1);
                sample_u64_inclusive(rng, 0, hi.wrapping_sub(lo))
                    .wrapping_add(lo) as i64 as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let lo = lo as i64 as u64;
                let hi = hi as i64 as u64;
                sample_u64_inclusive(rng, 0, hi.wrapping_sub(lo))
                    .wrapping_add(lo) as i64 as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// with SplitMix64 state expansion from the seed.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert!((0..16).any(|_| a.next_u64() != b.next_u64()));
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let a: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&a));
            let b: u64 = rng.gen_range(5..=5);
            assert_eq!(b, 5);
            let c: i32 = rng.gen_range(-4..4);
            assert!((-4..4).contains(&c));
            let d: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&d));
        }
    }

    #[test]
    fn full_u64_range_does_not_panic() {
        let mut rng = StdRng::seed_from_u64(4);
        let _: u64 = rng.gen_range(0..=u64::MAX);
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits={hits}");
    }

    #[test]
    fn works_through_dyn_rngcore() {
        // lifetime.rs samples through `R: Rng + ?Sized`.
        fn sample(rng: &mut (impl Rng + ?Sized)) -> u32 {
            rng.gen_range(1..=6)
        }
        let mut rng = StdRng::seed_from_u64(6);
        let v = sample(&mut rng);
        assert!((1..=6).contains(&v));
    }
}
