//! Vendored offline stand-in for the `criterion` crate.
//!
//! A minimal wall-clock benchmark harness exposing the exact surface the
//! workspace benches use: `Criterion` with `sample_size`/
//! `measurement_time`/`warm_up_time` builders, `bench_function`,
//! `benchmark_group`, `Bencher::iter`/`iter_batched`, `black_box`, and
//! the `criterion_group!`/`criterion_main!` macros. No statistics beyond
//! min/median/max per sample set; results print to stdout.

use std::time::{Duration, Instant};

/// Re-export of the standard optimization barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. The stand-in runs one input
/// per measurement regardless, so the variants only mirror the API.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: the real crate batches many per sample.
    SmallInput,
    /// Large inputs: the real crate runs few per sample.
    LargeInput,
    /// Exactly one input per iteration.
    PerIteration,
}

/// Per-iteration timing collector handed to bench closures.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    samples_ns: Vec<f64>,
}

impl Bencher {
    fn new(c: &Criterion) -> Bencher {
        Bencher {
            sample_size: c.sample_size,
            measurement_time: c.measurement_time,
            warm_up_time: c.warm_up_time,
            samples_ns: Vec::new(),
        }
    }

    /// Times `routine` repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run untimed until the warm-up budget elapses.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        // Aim each sample at measurement_time / sample_size, batching
        // enough iterations to keep timer overhead negligible.
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let target = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let batch = ((target / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples_ns
                .push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        loop {
            let input = setup();
            black_box(routine(input));
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples_ns.push(t.elapsed().as_nanos() as f64);
        }
    }

    fn report(&mut self, name: &str) {
        if self.samples_ns.is_empty() {
            println!("{name:<50} (no samples)");
            return;
        }
        self.samples_ns
            .sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
        let min = self.samples_ns[0];
        let med = self.samples_ns[self.samples_ns.len() / 2];
        let max = self.samples_ns[self.samples_ns.len() - 1];
        println!(
            "{name:<50} time: [{} {} {}]",
            fmt_ns(min),
            fmt_ns(med),
            fmt_ns(max)
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Benchmark configuration and registry.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the total time budget for the timed samples.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Sets the untimed warm-up budget.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self);
        f(&mut b);
        b.report(name);
        self
    }

    /// Opens a named group; member benchmarks print as `group/member`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            c: self,
        }
    }
}

/// A named cluster of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.c.bench_function(&full, f);
        self
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring the real macro's two
/// accepted forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench entry point running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_criterion() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1))
    }

    #[test]
    fn bench_function_records_samples() {
        let mut c = fast_criterion();
        c.bench_function("smoke/iter", |b| b.iter(|| black_box(2u64 + 2)));
    }

    #[test]
    fn groups_and_batched_input_run() {
        let mut c = fast_criterion();
        let mut g = c.benchmark_group("smoke");
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8; 64],
                |v| v.iter().map(|&x| x as u64).sum::<u64>(),
                BatchSize::LargeInput,
            )
        });
        g.finish();
    }

    #[test]
    fn ns_formatting_picks_units() {
        assert_eq!(fmt_ns(12.0), "12.00 ns");
        assert_eq!(fmt_ns(1_500.0), "1.50 µs");
        assert_eq!(fmt_ns(2_000_000.0), "2.00 ms");
    }
}
